// Command ptatin-scaling regenerates Tables II and III of the paper at
// laptop scale: iterations, coarse-grid setup/apply time and Stokes
// time-to-solution for the assembled (Asmb), reference matrix-free (MF)
// and tensor-product (Tens) fine-level operators, across a grid × worker
// ("cores") sweep, plus the efficiency metrics elements/core/second and
// GF/s derived from the analytic flop counts of the performance model.
//
// The paper sweeps 64³–192³ elements over 192–12,288 MPI cores on a Cray
// XC-30; this reproduction sweeps (by default) 8³–16³ elements over 1–4
// worker goroutines sharing one node — the regime where the paper's
// memory-bandwidth argument lives (see DESIGN.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"ptatin3d/internal/cli"
	"ptatin3d/internal/comm"
	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/op"

	"ptatin3d/internal/par"
	"ptatin3d/internal/perfmodel"
	"ptatin3d/internal/scenario"
	"ptatin3d/internal/stokes"
	"ptatin3d/internal/telemetry"
)

// telReg is the run-wide telemetry registry, nil unless -telemetry is set.
var telReg *telemetry.Registry

func main() {
	grids := flag.String("grids", "8,12,16", "comma-separated grid sizes (elements/direction)")
	cores := flag.String("cores", "1,2,4", "comma-separated worker counts (0 entries = runtime.NumCPU())")
	deta := flag.Float64("deta", 100, "viscosity contrast")
	opFlag := flag.String("op", "", "restrict the sweep to one fine-level representation (auto|mf|mfref|asm|galerkin); default sweeps asm, mfref and mf")
	ranks := flag.String("ranks", "", "run the rank-distributed solve over a PxxPyxPz rank grid (e.g. 2x2x1) instead of the shared-memory sweep")
	jsonFlag := flag.Bool("json", false, "with -ranks/-sweep: emit the machine-readable scaling benchmark (BENCH_PR5/BENCH_PR6 schema) and exit")
	sweep := flag.Bool("sweep", false, "run the PR6 weak+strong scaling sweep over 1..512 simulated ranks (pipelined Krylov + coarse agglomeration + fabric model)")
	sweepMaxRanks := flag.Int("sweep-max-ranks", 512, "with -sweep: skip sweep points above this rank count (bounded smoke runs)")
	pipelined := flag.Bool("pipelined", true, "with -sweep: use the single-reduce pipelined Krylov variants")
	aggRoots := flag.Int("agg", 8, "with -sweep: agglomerate the coarse solve onto this many roots (clamped to the rank count; 0 = legacy all-to-rank-0 gather)")
	telFlag := flag.Bool("telemetry", false, "emit the per-run telemetry table + JSON after the sweep")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	if *telFlag {
		telReg = telemetry.New()
		par.SetTelemetry(telReg.Root().Child("par"))
		defer par.SetTelemetry(nil)
		fem.SetTelemetry(telReg.Root().Child("fem"))
		defer fem.SetTelemetry(nil)
	}

	if *sweep {
		runSweepMode(*deta, *jsonFlag, *sweepMaxRanks, *pipelined, *aggRoots)
		return
	}
	if *ranks != "" {
		gridList, err := cli.ParseInts(*grids)
		if err != nil {
			log.Fatal(err)
		}
		runRanksMode(gridList, *ranks, *deta, *jsonFlag)
		return
	}
	if *jsonFlag {
		log.Fatal("ptatin-scaling: -json requires -ranks or -sweep (the BENCH_PR5/PR6 schemas cover the rank-distributed solve)")
	}

	counts := map[string]perfmodel.OpCounts{}
	for _, c := range perfmodel.ReproCounts() {
		counts[c.Name] = c
	}
	kindName := map[op.Kind]string{
		op.Assembled: "Asmb",
		op.MFRef:     "MF",
		op.Tensor:    "Tens",
		op.Galerkin:  "Galk",
		op.Auto:      "Auto",
	}
	countName := map[op.Kind]string{
		op.Assembled: "Assembled",
		op.MFRef:     "Matrix-free",
		op.Tensor:    "Tensor",
		op.Galerkin:  "Assembled",
		op.Auto:      "Tensor",
	}
	kinds := []op.Kind{op.Assembled, op.MFRef, op.Tensor}
	if *opFlag != "" {
		k, err := op.ParseKind(*opFlag)
		if err != nil {
			log.Fatal(err)
		}
		kinds = []op.Kind{k}
	}

	fmt.Println("# Table II/III reproduction (laptop scale; see DESIGN.md substitutions)")
	fmt.Printf("%-6s %-6s %-5s %4s %12s %12s %12s | %10s %9s %8s\n",
		"grid", "cores", "SpMV", "its", "coarse-setup", "coarse-apply", "solve(s)",
		"E/C/s", "GF/C/s", "GF/s")

	coreList, err := cli.ParseInts(*cores)
	if err != nil {
		log.Fatal(err)
	}
	cli.WorkersList(coreList)
	gridList, err := cli.ParseInts(*grids)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range gridList {
		for _, c := range coreList {
			for _, kind := range kinds {
				runOne(g, c, *deta, kind, kindName[kind], counts[countName[kind]])
			}
		}
	}
	fmt.Println("\n# Shape check (paper): MF uniformly faster than Asmb; Tens uniformly")
	fmt.Println("# faster than MF; E/C/s highest for Tens; iterations roughly flat in cores.")

	if telReg != nil {
		fmt.Println("\n# Telemetry breakdown (accumulated over the sweep)")
		telReg.WriteTable(os.Stdout)
		fmt.Println("\n# Telemetry (JSON)")
		if err := telReg.WriteJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}

func runOne(g, workers int, deta float64, kind op.Kind, label string, oc perfmodel.OpCounts) {
	o := scenario.DefaultSinkerOptions()
	o.M = g
	o.DeltaEta = deta
	o.Workers = workers
	mdl := scenario.NewSinker(o)
	mdl.UpdateCoefficients(la.NewVec(mdl.Prob.DA.NVelDOF()+mdl.Prob.DA.NPresDOF()), false)

	cfg := mdl.Cfg
	cfg.Workers = workers
	cfg.FineKind = kind
	cfg.Params.MaxIt = 1000
	if telReg != nil {
		cfg.Telemetry = telReg.Root().Child(fmt.Sprintf("g%d_w%d_%s", g, workers, label))
	}
	cfg.CoeffCoarsen = mdl.CoeffCoarsener()

	setupStart := time.Now()
	s, err := stokes.New(mdl.Prob, cfg)
	if err != nil {
		log.Fatal(err)
	}
	setup := time.Since(setupStart)

	bu := la.NewVec(mdl.Prob.DA.NVelDOF())
	fem.MomentumRHS(mdl.Prob, bu)
	x := la.NewVec(s.Op.N())
	solveStart := time.Now()
	res := s.Solve(x, bu, nil)
	solve := time.Since(solveStart).Seconds()
	if !res.Converged {
		fmt.Printf("%-6d %-6d %-5s FAILED after %d its\n", g, workers, label, res.Iterations)
		return
	}
	var coarseApply time.Duration
	if s.CoarseApply != nil {
		coarseApply = s.CoarseApply.Elapsed()
	}
	nel := float64(g * g * g)
	ecs := nel / float64(workers) / solve
	// GF/s attribution: fine-level operator flops × matvec count +
	// (smoother applications inside MG are counted via the PC attribution
	// used by the paper: total useful flops of the solve estimated from
	// the fine-operator count per Krylov iteration × a V(2,2) multiplier).
	const vcycleOps = 7.0 // 2 pre + 2 post smoother applies + residual + λmax share + matvec
	gflops := oc.Flops * nel * float64(res.Iterations) * vcycleOps / 1e9
	gfs := gflops / solve
	fmt.Printf("%-6d %-6d %-5s %4d %12.3f %12.3f %12.3f | %10.0f %9.3f %8.2f\n",
		g, workers, label, res.Iterations,
		setup.Seconds(), coarseApply.Seconds(), solve,
		ecs, gfs/float64(workers), gfs)
}

// rankRecord is one (grid, rank-grid) measurement in the BENCH_PR5
// schema: the rank-distributed solve of the sinker benchmark, with the
// per-rank communication volumes and the analytic halo prediction.
type rankRecord struct {
	M             int                `json:"m"`
	Ranks         string             `json:"ranks"`
	NRanks        int                `json:"nranks"`
	Iterations    int                `json:"iterations"`
	Converged     bool               `json:"converged"`
	SetupMs       float64            `json:"setup_ms"`
	SolveMs       float64            `json:"solve_ms"`
	ElemPerCoreS  float64            `json:"elem_per_core_s"`
	PredHaloBytes float64            `json:"predicted_halo_bytes_per_exchange"`
	PerRank       []stokes.RankStats `json:"per_rank"`
}

// runRanksMode reproduces the Tables II/III shape for the
// rank-distributed solve: each grid is solved collectively over a
// px×py×pz simulated MPI world (cores = ranks — the paper's flat-MPI
// mapping), reporting iterations, time-to-solution, elements/core/s and
// the per-rank halo/allreduce traffic next to the analytic halo-volume
// prediction of the performance model. Grids whose multigrid hierarchy
// the rank grid cannot decompose evenly (nesting requires Px,Py,Pz to
// divide the element counts at every level) are reported and skipped.
func runRanksMode(grids []int, ranksSpec string, deta float64, emitJSON bool) {
	px, py, pz, err := cli.ParseRanks(ranksSpec)
	if err != nil {
		log.Fatal(err)
	}
	nr := px * py * pz
	var records []rankRecord
	if !emitJSON {
		fmt.Printf("# Table II/III shape, rank-distributed (%s = %d ranks; cores = ranks)\n", ranksSpec, nr)
		fmt.Printf("%-6s %-7s %4s %12s %12s %10s | %12s %12s %10s\n",
			"grid", "ranks", "its", "setup(s)", "solve(s)", "E/C/s",
			"halo-B/rank", "pred-B/exch", "allreduces")
	}
	for _, g := range grids {
		o := scenario.DefaultSinkerOptions()
		o.M = g
		o.DeltaEta = deta
		o.Workers = 1
		mdl := scenario.NewSinker(o)
		mdl.UpdateCoefficients(la.NewVec(mdl.Prob.DA.NVelDOF()+mdl.Prob.DA.NPresDOF()), false)

		cfg := mdl.Cfg
		cfg.Workers = 1
		cfg.FineKind = op.Tensor
		cfg.Params.MaxIt = 1000
		cfg.CoeffCoarsen = mdl.CoeffCoarsener()
		if telReg != nil {
			cfg.Telemetry = telReg.Root().Child(fmt.Sprintf("g%d_r%s", g, ranksSpec))
		}

		setupStart := time.Now()
		s, err := stokes.New(mdl.Prob, cfg)
		if err != nil {
			log.Fatal(err)
		}
		setup := time.Since(setupStart)

		bu := la.NewVec(mdl.Prob.DA.NVelDOF())
		fem.MomentumRHS(mdl.Prob, bu)
		x := la.NewVec(s.Op.N())
		solveStart := time.Now()
		res, stats, err := s.SolveDistributed(x, bu, px, py, pz)
		solve := time.Since(solveStart).Seconds()
		if err != nil {
			// stderr in JSON mode so the document stays parseable.
			if emitJSON {
				log.Printf("grid %d ranks %s: SKIP: %v", g, ranksSpec, err)
			} else {
				fmt.Printf("%-6d %-7s SKIP: %v\n", g, ranksSpec, err)
			}
			continue
		}
		if !res.Converged {
			if emitJSON {
				log.Printf("grid %d ranks %s: FAILED after %d its", g, ranksSpec, res.Iterations)
			} else {
				fmt.Printf("%-6d %-7s FAILED after %d its\n", g, ranksSpec, res.Iterations)
			}
			continue
		}
		pred := perfmodel.HaloExchangeBytes(perfmodel.MaxGhostNodes(g, g, g, px, py, pz))
		nel := float64(g * g * g)
		ecs := nel / float64(nr) / solve
		var maxBytes, maxMsgs, maxAR int64
		for _, st := range stats {
			maxBytes = max(maxBytes, st.HaloBytes)
			maxMsgs = max(maxMsgs, st.HaloMsgs)
			maxAR = max(maxAR, st.AllReduces)
		}
		if emitJSON {
			records = append(records, rankRecord{
				M: g, Ranks: ranksSpec, NRanks: nr,
				Iterations: res.Iterations, Converged: true,
				SetupMs: setup.Seconds() * 1e3, SolveMs: solve * 1e3,
				ElemPerCoreS: ecs, PredHaloBytes: pred, PerRank: stats,
			})
			continue
		}
		fmt.Printf("%-6d %-7s %4d %12.3f %12.3f %10.0f | %12d %12.0f %10d\n",
			g, ranksSpec, res.Iterations, setup.Seconds(), solve, ecs,
			maxBytes, pred, maxAR)
		for _, st := range stats {
			fmt.Printf("#   rank %2d: halo %6d msgs %10d B, %5d allreduces, %d retries\n",
				st.Rank, st.HaloMsgs, st.HaloBytes, st.AllReduces, st.Retries)
		}
	}
	if emitJSON {
		doc := struct {
			Schema  string       `json:"schema"`
			Ranks   string       `json:"ranks"`
			Results []rankRecord `json:"results"`
		}{Schema: "BENCH_PR5", Ranks: ranksSpec, Results: records}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			log.Fatal(err)
		}
	}
}

// sweepRecord is one (mode, rank-grid, grid) measurement in the
// BENCH_PR6 schema: the latency-tolerant configuration of the
// rank-distributed solve (pipelined single-reduce Krylov, agglomerated
// coarse solve, α–β fabric model) at scaling-sweep rank counts. Per-rank
// detail is summarised (max over ranks) — at 512 ranks the full list
// drowns the document.
type sweepRecord struct {
	Mode         string  `json:"mode"` // "weak" | "strong"
	M            int     `json:"m"`
	Ranks        string  `json:"ranks"`
	NRanks       int     `json:"nranks"`
	Pipelined    bool    `json:"pipelined"`
	CoarseRoots  int     `json:"coarse_roots"`
	Iterations   int     `json:"iterations"`
	Converged    bool    `json:"converged"`
	SetupMs      float64 `json:"setup_ms"`
	SolveMs      float64 `json:"solve_ms"`
	ElemPerCoreS float64 `json:"elem_per_core_s"`
	// AllReducesMax is the per-rank allreduce count (max over ranks);
	// ARPerIt is that count divided by the outer iterations — the
	// pipelined variants hold it near 1 where the classical recurrences
	// need 2+ (the headline latency win of the PR).
	AllReducesMax int64   `json:"allreduces_max"`
	ARPerIt       float64 `json:"allreduce_per_iteration"`
	HaloBytesMax  int64   `json:"halo_bytes_max"`
	HaloMsgsMax   int64   `json:"halo_msgs_max"`
	RetriesTotal  int64   `json:"retries_total"`
	PredHaloBytes float64 `json:"predicted_halo_bytes_per_exchange"`
	// Modeled fabric time (max over ranks, ns) split by operation class:
	// the α–β interconnect cost that would dominate at real scale.
	FabricHaloNsMax      int64 `json:"fabric_halo_ns_max"`
	FabricAllReduceNsMax int64 `json:"fabric_allreduce_ns_max"`
	FabricCoarseNsMax    int64 `json:"fabric_coarse_ns_max"`
}

// sweepPoint is one configuration of the PR6 sweep.
type sweepPoint struct {
	mode       string
	px, py, pz int
	g          int
}

// sweepPoints returns the PR6 sweep: weak scaling holds 2 elements per
// rank per axis (the whole problem grows with the machine), strong
// scaling holds the 16^3 grid fixed while the rank grid grows — both
// over 1, 8, 64, 512 ranks. Every grid nests 2:1 under its rank grid at
// both hierarchy levels, so the distributed V-cycle decomposes evenly.
func sweepPoints() []sweepPoint {
	return []sweepPoint{
		{"weak", 1, 1, 1, 2}, {"weak", 2, 2, 2, 4}, {"weak", 4, 4, 4, 8}, {"weak", 8, 8, 8, 16},
		{"strong", 1, 1, 1, 16}, {"strong", 2, 2, 2, 16}, {"strong", 4, 4, 4, 16}, {"strong", 8, 8, 8, 16},
	}
}

// runSweepMode runs the PR6 weak+strong scaling sweep with the
// latency-tolerant solver configuration and emits the BENCH_PR6 table
// (and, with -json, the machine-readable document). Identical
// (rank-grid, grid) configurations — the 512-rank corner is shared by
// both scaling curves — are solved once and reported under both modes.
func runSweepMode(deta float64, emitJSON bool, maxRanks int, pipelined bool, aggRoots int) {
	if !emitJSON {
		fmt.Printf("# PR6 scaling sweep (pipelined=%v, agg roots<=%d, fabric=alpha-beta; cores = ranks)\n",
			pipelined, aggRoots)
		fmt.Printf("%-6s %-6s %-7s %6s %4s %12s %10s %6s | %12s %12s %12s\n",
			"mode", "grid", "ranks", "nranks", "its", "solve(s)", "E/C/s", "AR/it",
			"fab-halo(ms)", "fab-AR(ms)", "fab-crs(ms)")
	}
	type cacheKey struct {
		px, py, pz, g int
	}
	cache := map[cacheKey]*sweepRecord{}
	var records []sweepRecord
	for _, pt := range sweepPoints() {
		nr := pt.px * pt.py * pt.pz
		if nr > maxRanks {
			if !emitJSON {
				fmt.Printf("%-6s %-6d %-7s SKIP: above -sweep-max-ranks=%d\n",
					pt.mode, pt.g, fmt.Sprintf("%dx%dx%d", pt.px, pt.py, pt.pz), maxRanks)
			} else {
				log.Printf("sweep %s grid %d %dx%dx%d: SKIP: above -sweep-max-ranks=%d",
					pt.mode, pt.g, pt.px, pt.py, pt.pz, maxRanks)
			}
			continue
		}
		key := cacheKey{pt.px, pt.py, pt.pz, pt.g}
		rec := cache[key]
		if rec == nil {
			rec = sweepOne(pt, deta, pipelined, aggRoots, emitJSON)
			cache[key] = rec
		}
		if rec == nil {
			continue
		}
		r := *rec
		r.Mode = pt.mode
		records = append(records, r)
		if !emitJSON {
			fmt.Printf("%-6s %-6d %-7s %6d %4d %12.3f %10.0f %6.2f | %12.1f %12.1f %12.1f\n",
				r.Mode, r.M, r.Ranks, r.NRanks, r.Iterations, r.SolveMs/1e3,
				r.ElemPerCoreS, r.ARPerIt,
				float64(r.FabricHaloNsMax)/1e6, float64(r.FabricAllReduceNsMax)/1e6,
				float64(r.FabricCoarseNsMax)/1e6)
		}
	}
	if emitJSON {
		doc := struct {
			Schema    string        `json:"schema"`
			Pipelined bool          `json:"pipelined"`
			AggRoots  int           `json:"agg_roots"`
			Results   []sweepRecord `json:"results"`
		}{Schema: "BENCH_PR6", Pipelined: pipelined, AggRoots: aggRoots, Results: records}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			log.Fatal(err)
		}
	}
}

// sweepOne solves one sweep point and summarises it (nil on skip/fail).
func sweepOne(pt sweepPoint, deta float64, pipelined bool, aggRoots int, emitJSON bool) *sweepRecord {
	nr := pt.px * pt.py * pt.pz
	ranksSpec := fmt.Sprintf("%dx%dx%d", pt.px, pt.py, pt.pz)
	o := scenario.DefaultSinkerOptions()
	o.M = pt.g
	o.DeltaEta = deta
	o.Workers = 1
	mdl := scenario.NewSinker(o)
	mdl.UpdateCoefficients(la.NewVec(mdl.Prob.DA.NVelDOF()+mdl.Prob.DA.NPresDOF()), false)

	cfg := mdl.Cfg
	cfg.Workers = 1
	cfg.FineKind = op.Tensor
	cfg.Params.MaxIt = 1000
	cfg.CoeffCoarsen = mdl.CoeffCoarsener()
	// Two geometric levels everywhere: the coarsest level's g/2 elements
	// per axis must still host the rank grid (nesting requires every
	// level to decompose), and the whole sweep should run one hierarchy
	// shape so the scaling curves compare like against like.
	cfg.Levels = 2

	setupStart := time.Now()
	s, err := stokes.New(mdl.Prob, cfg)
	if err != nil {
		log.Fatal(err)
	}
	setup := time.Since(setupStart)

	roots := aggRoots
	if roots > nr {
		roots = nr
	}
	opt := stokes.DistOptions{
		Pipelined:   pipelined,
		CoarseRoots: roots,
		Fabric:      perfmodel.DefaultFabric(),
		// Oversubscribed worlds (512 goroutines per host core) deliver
		// acks slowly without anything being wrong: a generous
		// per-attempt timeout keeps spurious retransmissions out of the
		// measurement, and the poll-slice cap in comm keeps discovery
		// latency flat regardless.
		Policy: comm.RetryPolicy{Timeout: 2 * time.Second, MaxRetries: 8, Backoff: 1.5},
	}

	bu := la.NewVec(mdl.Prob.DA.NVelDOF())
	fem.MomentumRHS(mdl.Prob, bu)
	x := la.NewVec(s.Op.N())
	solveStart := time.Now()
	res, stats, err := s.SolveDistributedOpt(x, bu, pt.px, pt.py, pt.pz, opt)
	solve := time.Since(solveStart).Seconds()
	if err != nil || !res.Converged {
		if emitJSON {
			log.Printf("sweep %s grid %d ranks %s: FAILED (its=%d, err=%v)", pt.mode, pt.g, ranksSpec, res.Iterations, err)
		} else {
			fmt.Printf("%-6s %-6d %-7s FAILED (its=%d, err=%v)\n", pt.mode, pt.g, ranksSpec, res.Iterations, err)
		}
		return nil
	}
	rec := &sweepRecord{
		M: pt.g, Ranks: ranksSpec, NRanks: nr,
		Pipelined: pipelined, CoarseRoots: roots,
		Iterations: res.Iterations, Converged: true,
		SetupMs: setup.Seconds() * 1e3, SolveMs: solve * 1e3,
		ElemPerCoreS:  float64(pt.g*pt.g*pt.g) / float64(nr) / solve,
		PredHaloBytes: perfmodel.HaloExchangeBytes(perfmodel.MaxGhostNodes(pt.g, pt.g, pt.g, pt.px, pt.py, pt.pz)),
	}
	for _, st := range stats {
		rec.AllReducesMax = max(rec.AllReducesMax, st.AllReduces)
		rec.HaloBytesMax = max(rec.HaloBytesMax, st.HaloBytes)
		rec.HaloMsgsMax = max(rec.HaloMsgsMax, st.HaloMsgs)
		rec.RetriesTotal += st.Retries
		rec.FabricHaloNsMax = max(rec.FabricHaloNsMax, st.FabricHaloNs)
		rec.FabricAllReduceNsMax = max(rec.FabricAllReduceNsMax, st.FabricAllReduceNs)
		rec.FabricCoarseNsMax = max(rec.FabricCoarseNsMax, st.FabricCoarseNs)
	}
	if res.Iterations > 0 {
		rec.ARPerIt = float64(rec.AllReducesMax) / float64(res.Iterations)
	}
	return rec
}
