// Command ptatin-opcost regenerates Table I of the paper: per-element
// flop and byte counts of the four viscous-operator application
// strategies, the measured machine balance, roofline-predicted times, and
// measured wall times of this implementation's kernels.
//
// Usage:
//
//	ptatin-opcost [-m 16] [-workers 4] [-reps 5] [-telemetry] [-cpuprofile out.pprof]
//	ptatin-opcost -json [-grids 4,8,12,16] [-op mf] [-workers 4] [-reps 5]
//
// With -telemetry the tool additionally runs a multigrid-preconditioned
// Stokes solve on the same deformed mesh and emits the telemetry registry
// twice: a Table-IV-shaped per-component breakdown (calls / wall time /
// time per call, including per-MG-level smoother and operator counts) and
// the full JSON snapshot.
//
// With -json the tool instead sweeps the unified operator backends of
// internal/op (tensor matrix-free, reference matrix-free, rediscretized
// CSR, and — where a 2× finer mesh is affordable — the Galerkin product)
// over the -grids level sizes and emits a machine-readable benchmark
// (apply time, MDoF/s, setup time per backend per size) on stdout; this is
// the producer behind scripts/bench.sh's BENCH_PR4.json.
//
// With -vcycle the tool benchmarks the multigrid V-cycle smoother
// configurations of the mixed-precision PR — unblocked f64 (the
// BENCH_PR4/PR5 baseline), cache-blocked f64, and cache-blocked f32 —
// timing the fine-level pre+post smoothing pair and the whole V-cycle
// application, then runs the Δη=10⁶ sinker-style contrast solve in f64
// and f32 to record outer iteration parity. Emits BENCH_PR7 JSON on
// stdout; this is the producer behind scripts/bench.sh's BENCH_PR7.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"ptatin3d/internal/cli"
	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/mg"
	"ptatin3d/internal/op"
	"ptatin3d/internal/par"
	"ptatin3d/internal/perfmodel"
	"ptatin3d/internal/stokes"
	"ptatin3d/internal/telemetry"
)

func main() {
	m := flag.Int("m", 16, "elements per direction")
	workers := flag.Int("workers", 0, "worker goroutines (0 = runtime.NumCPU())")
	reps := flag.Int("reps", 5, "timing repetitions (best-of)")
	telFlag := flag.Bool("telemetry", false, "run an instrumented MG Stokes solve and emit the telemetry table + JSON")
	jsonFlag := flag.Bool("json", false, "emit the machine-readable per-backend benchmark (BENCH_PR4 schema) and exit")
	vcycleFlag := flag.Bool("vcycle", false, "emit the V-cycle smoother benchmark (BENCH_PR7 schema) and exit")
	levels := flag.Int("levels", 3, "multigrid depth for -vcycle")
	vcycleGate := flag.Float64("vcycle-gate", 0, "with -vcycle: exit nonzero if the blocked-f64 smoother speedup falls below this (CI regression gate; 0 disables)")
	vcycleParity := flag.Bool("vcycle-parity", true, "with -vcycle: run the Δη=10⁶ f64/f32 outer-iteration parity solves")
	grids := flag.String("grids", "4,8,12", "comma-separated level sizes for -json")
	opFlag := flag.String("op", "", "restrict -json to one backend (mf|mfref|asm|galerkin)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()
	*workers = cli.Workers(*workers)

	if *jsonFlag {
		runJSONBench(*grids, *opFlag, *workers, *reps)
		return
	}
	if *vcycleFlag {
		runVCycleBench(*m, *levels, *workers, *reps, *vcycleGate, *vcycleParity)
		return
	}

	if *cpuprofile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}

	p := benchProblem(*m, *workers)
	da := p.DA

	nel := float64(da.NElements())
	n := da.NVelDOF()
	u := la.NewVec(n)
	for i := range u {
		u[i] = math.Sin(float64(i))
	}
	y := la.NewVec(n)

	fmt.Printf("# Table I reproduction — %d³ Q2 elements (%d velocity dofs), %d workers\n",
		*m, n, *workers)

	fmt.Println("\n## Machine balance (measured)")
	mach := perfmodel.MeasureMachine()
	fmt.Printf("stream triad bandwidth: %8.2f GB/s\n", mach.StreamBW/1e9)
	fmt.Printf("scalar flop throughput: %8.2f GF/s\n", mach.FlopRate/1e9)
	fmt.Printf("balance:                %8.2f flops/byte\n", mach.FlopRate/mach.StreamBW)

	fmt.Println("\n## Analytic per-element counts")
	fmt.Printf("%-14s %10s %16s %16s %10s %10s\n",
		"operator", "flops", "bytes(perfect)", "bytes(pessimal)", "AI(perf)", "AI(pess)")
	fmt.Println("paper (Edison, Table I):")
	for _, c := range perfmodel.PaperTableI() {
		fmt.Printf("%-14s %10.0f %16.0f %16.0f %10.1f %10.1f\n",
			c.Name, c.Flops, c.BytesPerfect, c.BytesPessimal,
			c.ArithmeticIntensity(true), c.ArithmeticIntensity(false))
	}
	fmt.Println("this implementation:")
	repro := perfmodel.ReproCounts()
	for _, c := range repro {
		fmt.Printf("%-14s %10.0f %16.0f %16.0f %10.1f %10.1f\n",
			c.Name, c.Flops, c.BytesPerfect, c.BytesPessimal,
			c.ArithmeticIntensity(true), c.ArithmeticIntensity(false))
	}

	// Operator applications.
	type variant struct {
		name  string
		apply func()
		setup time.Duration
	}
	var variants []variant

	t0 := time.Now()
	asm := fem.NewAsm(p)
	asmSetup := time.Since(t0)
	variants = append(variants, variant{"Assembled", func() { asm.Apply(u, y) }, asmSetup})

	mf := fem.NewMF(p)
	variants = append(variants, variant{"Matrix-free", func() { mf.Apply(u, y) }, 0})

	tens := fem.NewTensor(p)
	variants = append(variants, variant{"Tensor", func() { tens.Apply(u, y) }, 0})

	t0 = time.Now()
	tc := fem.NewTensorC(p)
	tcSetup := time.Since(t0)
	variants = append(variants, variant{"TensorC", func() { tc.Apply(u, y) }, tcSetup})

	fmt.Println("\n## Measured operator application (best of", *reps, "reps)")
	fmt.Printf("%-14s %12s %12s %14s %14s %12s\n",
		"operator", "time(ms)", "GF/s", "roofline(ms)", "bound", "setup(ms)")
	for i, v := range variants {
		v.apply() // warm up
		best := time.Duration(1 << 62)
		for r := 0; r < *reps; r++ {
			start := time.Now()
			v.apply()
			if el := time.Since(start); el < best {
				best = el
			}
		}
		c := repro[i]
		roof := mach.RooflineTime(c, true) * nel
		bound := "compute"
		if mach.MemoryBound(c, true) {
			bound = "memory"
		}
		gfs := c.Flops * nel / best.Seconds() / 1e9
		fmt.Printf("%-14s %12.3f %12.2f %14.3f %14s %12.1f\n",
			v.name, float64(best.Microseconds())/1000, gfs, roof*1e3, bound,
			float64(v.setup.Microseconds())/1000)
	}
	fmt.Println("\nShape check (paper): Tensor < Matrix-free < Assembled in time;")
	fmt.Println("assembled SpMV memory-bound, matrix-free kernels compute-bound.")

	if *telFlag {
		runTelemetrySolve(p, *workers)
	}
}

// runTelemetrySolve performs one multigrid-preconditioned Stokes solve on
// the Table-I mesh with the full telemetry stack enabled and emits the
// registry as a Table-IV-shaped breakdown plus the JSON snapshot.
func runTelemetrySolve(p *fem.Problem, workers int) {
	reg := telemetry.New()
	par.SetTelemetry(reg.Root().Child("par"))
	defer par.SetTelemetry(nil)
	fem.SetTelemetry(reg.Root().Child("fem"))
	defer fem.SetTelemetry(nil)

	// Give the Table-I problem a nontrivial body force so the solve has a
	// real RHS: variable density under vertical gravity.
	eta := func(x, y, z float64) float64 {
		return math.Exp(2 * math.Sin(3*x) * math.Cos(2*y))
	}
	rho := func(x, y, z float64) float64 {
		return 1 + 0.5*math.Sin(math.Pi*x)*math.Sin(math.Pi*y)*math.Sin(math.Pi*z)
	}
	p.Gravity = [3]float64{0, 0, -9.8}
	p.SetCoefficientsFunc(eta, rho)

	cfg := stokes.DefaultConfig()
	cfg.Workers = workers
	cfg.Telemetry = reg.Root()
	cfg.CoeffCoarsen = mg.FuncCoeffCoarsener(eta, rho)
	// Clamp MG depth to what the mesh supports (each level halves m).
	mEl := p.DA.Mx
	levels := 1
	for c := mEl; c%2 == 0 && c > 2 && levels < 3; c /= 2 {
		levels++
	}
	if levels < 2 {
		fmt.Fprintf(os.Stderr, "telemetry solve skipped: m=%d cannot coarsen\n", mEl)
		return
	}
	cfg.Levels = levels

	s, err := stokes.New(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	bu := la.NewVec(p.DA.NVelDOF())
	fem.MomentumRHS(p, bu)
	x := la.NewVec(s.Op.N())
	res := s.Solve(x, bu, nil)

	fmt.Printf("\n## Instrumented MG Stokes solve (%d levels): converged=%v its=%d rel=%.2e\n",
		levels, res.Converged, res.Iterations, res.Residual/res.Residual0)
	fmt.Println("\n## Telemetry breakdown (Table-IV shape)")
	reg.WriteTable(os.Stdout)
	fmt.Println("\n## Telemetry (JSON)")
	if err := reg.WriteJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// benchProblem builds the Table-I deformed variable-viscosity problem at
// size m (shared by the default mode and the -json sweep).
func benchProblem(m, workers int) *fem.Problem {
	da := mesh.New(m, m, m, 0, 1, 0, 1, 0, 1)
	da.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + 0.05*math.Sin(math.Pi*y), y + 0.04*math.Sin(math.Pi*z), z + 0.03*x*y
	})
	bc := mesh.NewBC(da)
	bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin)
	p := fem.NewProblem(da, bc)
	p.Workers = workers
	p.SetCoefficientsFunc(func(x, y, z float64) float64 {
		return math.Exp(2 * math.Sin(3*x) * math.Cos(2*y))
	}, nil)
	return p
}

// benchRecord is one (backend, size) measurement in the BENCH_PR4 schema.
type benchRecord struct {
	M        int     `json:"m"`
	N        int     `json:"n"`
	Backend  string  `json:"backend"`
	ApplyMs  float64 `json:"apply_ms"`
	MDoFPerS float64 `json:"mdof_per_s"`
	SetupMs  float64 `json:"setup_ms"`
}

// runJSONBench times each internal/op backend's Apply at each level size
// and writes the BENCH_PR4 JSON document to stdout. The Galerkin backend
// needs an assembled 2× finer mesh, so it is only benchmarked at sizes
// where that matrix stays affordable.
func runJSONBench(grids, only string, workers, reps int) {
	var restrict op.Kind
	restricted := false
	if only != "" {
		k, err := op.ParseKind(only)
		if err != nil {
			log.Fatal(err)
		}
		if k == op.Auto {
			log.Fatal("ptatin-opcost -json: auto is a selector, not a backend; pick mf|mfref|asm|galerkin")
		}
		restrict, restricted = k, true
	}
	var records []benchRecord
	gridList, err := cli.ParseInts(grids)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range gridList {
		p := benchProblem(m, workers)
		kinds := []op.Kind{op.Tensor, op.MFRef, op.Assembled}
		if 2*m <= 16 {
			kinds = append(kinds, op.Galerkin)
		}
		for _, k := range kinds {
			if restricted && k != restrict {
				continue
			}
			env := op.Env{Prob: p, Workers: workers}
			if k == op.Galerkin {
				fine := benchProblem(2*m, workers)
				var fineA *la.CSR
				env.FineCSR = func() *la.CSR {
					if fineA == nil {
						fineA = fem.AssembleViscous(fine)
					}
					return fineA
				}
				prol := mg.NewProlongation(fine.DA, p.DA, fine.BC, p.BC)
				env.Prolong = prol.ToCSR
			}
			o, err := op.New(k, env)
			if err != nil {
				log.Fatalf("m=%d %v: %v", m, k, err)
			}
			setupStart := time.Now()
			if err := o.Setup(); err != nil {
				log.Fatalf("m=%d %v setup: %v", m, k, err)
			}
			setup := time.Since(setupStart)
			n := o.N()
			u, y := la.NewVec(n), la.NewVec(n)
			for i := range u {
				u[i] = math.Sin(float64(i))
			}
			o.Apply(u, y) // warm up
			best := time.Duration(1 << 62)
			for r := 0; r < reps; r++ {
				start := time.Now()
				o.Apply(u, y)
				if el := time.Since(start); el < best {
					best = el
				}
			}
			records = append(records, benchRecord{
				M:        m,
				N:        n,
				Backend:  k.String(),
				ApplyMs:  best.Seconds() * 1e3,
				MDoFPerS: float64(n) / best.Seconds() / 1e6,
				SetupMs:  setup.Seconds() * 1e3,
			})
		}
	}
	mach := perfmodel.CalibratedMachine()
	doc := struct {
		Schema  string `json:"schema"`
		Workers int    `json:"workers"`
		Reps    int    `json:"reps"`
		Machine struct {
			StreamGBs float64 `json:"stream_gb_per_s"`
			FlopGFs   float64 `json:"flop_gf_per_s"`
		} `json:"machine"`
		Results []benchRecord `json:"results"`
	}{Schema: "BENCH_PR4", Workers: workers, Reps: reps, Results: records}
	doc.Machine.StreamGBs = mach.StreamBW / 1e9
	doc.Machine.FlopGFs = mach.FlopRate / 1e9
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
}

// vcycleRecord is one smoother configuration's timing in the BENCH_PR7
// schema. SmootherMs times the fine level's pre+post smoothing pair (the
// per-cycle smoother cost the paper's Table IV attributes to the finest
// level); VCycleMs times one whole preconditioner application.
type vcycleRecord struct {
	Config     string  `json:"config"`
	FineKind   string  `json:"fine_kind"`
	SmootherMs float64 `json:"smoother_ms"`
	VCycleMs   float64 `json:"vcycle_ms"`
	SetupMs    float64 `json:"setup_ms"`
}

// runVCycleBench produces BENCH_PR7: fine-smoother and V-cycle times for
// the unblocked-f64 baseline (the configuration every earlier PR
// benchmarked), the cache-blocked f64 wavefront smoother, and the
// cache-blocked float32 hierarchy, plus the Δη=10⁶ outer-iteration parity
// check between the f64 and f32 preconditioners.
func runVCycleBench(m, levels, workers, reps int, gate float64, parityRun bool) {
	eta := func(x, y, z float64) float64 {
		return math.Exp(2 * math.Sin(3*x) * math.Cos(2*y))
	}
	type config struct {
		name    string
		blocked bool
		prec    op.Precision
	}
	configs := []config{
		{"unblocked-f64", false, op.F64},
		{"blocked-f64", true, op.F64},
		{"blocked-f32", true, op.F32},
	}
	var records []vcycleRecord
	for _, c := range configs {
		p := benchProblem(m, workers)
		probs := mg.CoarsenProblems(p, levels, mg.FuncCoeffCoarsener(eta, nil))
		t0 := time.Now()
		mgp, err := mg.Build(probs, mg.Options{
			Kinds:       op.DefaultLevelKinds(levels, op.Tensor, false),
			SmoothSteps: 2,
			Workers:     workers,
			Blocked:     c.blocked,
			Precision:   c.prec,
		})
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		if err := mgp.UseBlockJacobiCoarse(1); err != nil {
			log.Fatalf("%s coarse: %v", c.name, err)
		}
		setup := time.Since(t0)
		lev := mgp.Levels[0]
		if c.blocked && lev.Blocked == nil {
			log.Fatalf("%s: fine level has no blocked smoother", c.name)
		}
		smooth := func(b, x la.Vec, zeroGuess bool) {
			if lev.Blocked != nil {
				lev.Blocked.Smooth(b, x, zeroGuess)
			} else {
				lev.Smoother.Smooth(b, x, zeroGuess)
			}
		}
		n := lev.Op.N()
		b, x, z := la.NewVec(n), la.NewVec(n), la.NewVec(n)
		for i := range b {
			if !lev.Prob.BC.Mask[i] {
				b[i] = math.Sin(float64(i))
			}
		}
		// Fine-level smoother: the pre-smooth (zero guess) + post-smooth
		// (warm guess) pair of one V-cycle visit.
		smooth(b, x, true)
		smooth(b, x, false)
		bestS := time.Duration(1 << 62)
		for r := 0; r < reps; r++ {
			start := time.Now()
			smooth(b, x, true)
			smooth(b, x, false)
			if el := time.Since(start); el < bestS {
				bestS = el
			}
		}
		mgp.Apply(b, z) // warm up
		bestV := time.Duration(1 << 62)
		for r := 0; r < reps; r++ {
			start := time.Now()
			mgp.Apply(b, z)
			if el := time.Since(start); el < bestV {
				bestV = el
			}
		}
		records = append(records, vcycleRecord{
			Config:     c.name,
			FineKind:   lev.Op.Kind().String(),
			SmootherMs: bestS.Seconds() * 1e3,
			VCycleMs:   bestV.Seconds() * 1e3,
			SetupMs:    setup.Seconds() * 1e3,
		})
	}

	// Outer-iteration parity at paper-scale contrast: the f32 hierarchy
	// must not cost extra Krylov iterations.
	const deltaEta = 1e6
	parity := struct {
		DeltaEta     float64 `json:"delta_eta"`
		ItsF64       int     `json:"its_f64"`
		ItsF32       int     `json:"its_f32"`
		ConvergedF64 bool    `json:"converged_f64"`
		ConvergedF32 bool    `json:"converged_f32"`
	}{DeltaEta: deltaEta}
	if parityRun {
		parity.ItsF64, parity.ConvergedF64 = contrastSolve(workers, false, op.F64)
		parity.ItsF32, parity.ConvergedF32 = contrastSolve(workers, true, op.F32)
	}

	doc := struct {
		Schema             string         `json:"schema"`
		M                  int            `json:"m"`
		Levels             int            `json:"levels"`
		Workers            int            `json:"workers"`
		Reps               int            `json:"reps"`
		Results            []vcycleRecord `json:"results"`
		SmootherSpeedupF64 float64        `json:"smoother_speedup_blocked_f64"`
		SmootherSpeedupF32 float64        `json:"smoother_speedup_blocked_f32"`
		VCycleSpeedupF32   float64        `json:"vcycle_speedup_blocked_f32"`
		Parity             interface{}    `json:"contrast_parity"`
	}{Schema: "BENCH_PR7", M: m, Levels: levels, Workers: workers, Reps: reps,
		Results: records, Parity: parity}
	doc.SmootherSpeedupF64 = records[0].SmootherMs / records[1].SmootherMs
	doc.SmootherSpeedupF32 = records[0].SmootherMs / records[2].SmootherMs
	doc.VCycleSpeedupF32 = records[0].VCycleMs / records[2].VCycleMs
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
	if gate > 0 && doc.SmootherSpeedupF64 < gate {
		log.Fatalf("blocked-f64 smoother speedup %.2fx below the %.2fx regression gate (unblocked %.2fms, blocked %.2fms)",
			doc.SmootherSpeedupF64, gate, records[0].SmootherMs, records[1].SmootherMs)
	}
}

// contrastSolve runs the Δη=10⁶ sinker Stokes solve (a dense unit-
// viscosity sphere in a 10⁻⁶-viscosity ambient fluid under gravity,
// free-slip box, free surface on top) with the given preconditioner
// configuration and reports the outer FGMRES iteration count. The
// coefficients go through the vertex-grid projection pipeline like the
// material-point path, so multigrid stays robust at this contrast. The
// grid is fixed at 8³ — parity, not throughput, is what it measures.
func contrastSolve(workers int, blocked bool, prec op.Precision) (its int, converged bool) {
	const (
		m    = 8
		deta = 1e6
		rad  = 0.22
	)
	inside := func(x, y, z float64) bool {
		dx, dy, dz := x-0.5, y-0.5, z-0.55
		return dx*dx+dy*dy+dz*dz < rad*rad
	}
	eta := func(x, y, z float64) float64 {
		if inside(x, y, z) {
			return 1
		}
		return 1 / deta
	}
	rho := func(x, y, z float64) float64 {
		if inside(x, y, z) {
			return 1.2
		}
		return 1
	}
	da := mesh.New(m, m, m, 0, 1, 0, 1, 0, 1)
	bc := mesh.NewBC(da)
	bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin)
	p := fem.NewProblem(da, bc)
	p.Workers = workers
	p.Gravity = [3]float64{0, 0, -9.8}
	etaV := fem.VertexFieldFromFunc(da, eta)
	rhoV := fem.VertexFieldFromFunc(da, rho)
	p.SetCoefficientsVertex(etaV, rhoV)

	cfg := stokes.DefaultConfig()
	cfg.Workers = workers
	cfg.OuterMethod = "fgmres"
	cfg.Params.RTol = 1e-5
	cfg.Params.MaxIt = 1000
	// High-contrast sinkers need a long flexible basis; the default
	// restart of 50 stalls FGMRES near Δη=10⁶ in either precision.
	cfg.Params.Restart = 200
	cfg.CoeffCoarsen = mg.VertexCoeffCoarsener(da, etaV, rhoV)
	cfg.Blocked = blocked
	cfg.Precision = prec
	s, err := stokes.New(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	bu := la.NewVec(p.DA.NVelDOF())
	fem.MomentumRHS(p, bu)
	x := la.NewVec(s.Op.N())
	res := s.Solve(x, bu, nil)
	return res.Iterations, res.Converged
}
