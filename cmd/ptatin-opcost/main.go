// Command ptatin-opcost regenerates Table I of the paper: per-element
// flop and byte counts of the four viscous-operator application
// strategies, the measured machine balance, roofline-predicted times, and
// measured wall times of this implementation's kernels.
//
// Usage:
//
//	ptatin-opcost [-m 16] [-workers 4] [-reps 5] [-telemetry] [-cpuprofile out.pprof]
//	ptatin-opcost -json [-grids 4,8,12,16] [-op mf] [-workers 4] [-reps 5]
//
// With -telemetry the tool additionally runs a multigrid-preconditioned
// Stokes solve on the same deformed mesh and emits the telemetry registry
// twice: a Table-IV-shaped per-component breakdown (calls / wall time /
// time per call, including per-MG-level smoother and operator counts) and
// the full JSON snapshot.
//
// With -json the tool instead sweeps the unified operator backends of
// internal/op (tensor matrix-free, reference matrix-free, rediscretized
// CSR, and — where a 2× finer mesh is affordable — the Galerkin product)
// over the -grids level sizes and emits a machine-readable benchmark
// (apply time, MDoF/s, setup time per backend per size) on stdout; this is
// the producer behind scripts/bench.sh's BENCH_PR4.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"ptatin3d/internal/cli"
	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/mg"
	"ptatin3d/internal/op"
	"ptatin3d/internal/par"
	"ptatin3d/internal/perfmodel"
	"ptatin3d/internal/stokes"
	"ptatin3d/internal/telemetry"
)

func main() {
	m := flag.Int("m", 16, "elements per direction")
	workers := flag.Int("workers", 0, "worker goroutines (0 = runtime.NumCPU())")
	reps := flag.Int("reps", 5, "timing repetitions (best-of)")
	telFlag := flag.Bool("telemetry", false, "run an instrumented MG Stokes solve and emit the telemetry table + JSON")
	jsonFlag := flag.Bool("json", false, "emit the machine-readable per-backend benchmark (BENCH_PR4 schema) and exit")
	grids := flag.String("grids", "4,8,12", "comma-separated level sizes for -json")
	opFlag := flag.String("op", "", "restrict -json to one backend (mf|mfref|asm|galerkin)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()
	*workers = cli.Workers(*workers)

	if *jsonFlag {
		runJSONBench(*grids, *opFlag, *workers, *reps)
		return
	}

	if *cpuprofile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}

	p := benchProblem(*m, *workers)
	da := p.DA

	nel := float64(da.NElements())
	n := da.NVelDOF()
	u := la.NewVec(n)
	for i := range u {
		u[i] = math.Sin(float64(i))
	}
	y := la.NewVec(n)

	fmt.Printf("# Table I reproduction — %d³ Q2 elements (%d velocity dofs), %d workers\n",
		*m, n, *workers)

	fmt.Println("\n## Machine balance (measured)")
	mach := perfmodel.MeasureMachine()
	fmt.Printf("stream triad bandwidth: %8.2f GB/s\n", mach.StreamBW/1e9)
	fmt.Printf("scalar flop throughput: %8.2f GF/s\n", mach.FlopRate/1e9)
	fmt.Printf("balance:                %8.2f flops/byte\n", mach.FlopRate/mach.StreamBW)

	fmt.Println("\n## Analytic per-element counts")
	fmt.Printf("%-14s %10s %16s %16s %10s %10s\n",
		"operator", "flops", "bytes(perfect)", "bytes(pessimal)", "AI(perf)", "AI(pess)")
	fmt.Println("paper (Edison, Table I):")
	for _, c := range perfmodel.PaperTableI() {
		fmt.Printf("%-14s %10.0f %16.0f %16.0f %10.1f %10.1f\n",
			c.Name, c.Flops, c.BytesPerfect, c.BytesPessimal,
			c.ArithmeticIntensity(true), c.ArithmeticIntensity(false))
	}
	fmt.Println("this implementation:")
	repro := perfmodel.ReproCounts()
	for _, c := range repro {
		fmt.Printf("%-14s %10.0f %16.0f %16.0f %10.1f %10.1f\n",
			c.Name, c.Flops, c.BytesPerfect, c.BytesPessimal,
			c.ArithmeticIntensity(true), c.ArithmeticIntensity(false))
	}

	// Operator applications.
	type variant struct {
		name  string
		apply func()
		setup time.Duration
	}
	var variants []variant

	t0 := time.Now()
	asm := fem.NewAsm(p)
	asmSetup := time.Since(t0)
	variants = append(variants, variant{"Assembled", func() { asm.Apply(u, y) }, asmSetup})

	mf := fem.NewMF(p)
	variants = append(variants, variant{"Matrix-free", func() { mf.Apply(u, y) }, 0})

	tens := fem.NewTensor(p)
	variants = append(variants, variant{"Tensor", func() { tens.Apply(u, y) }, 0})

	t0 = time.Now()
	tc := fem.NewTensorC(p)
	tcSetup := time.Since(t0)
	variants = append(variants, variant{"TensorC", func() { tc.Apply(u, y) }, tcSetup})

	fmt.Println("\n## Measured operator application (best of", *reps, "reps)")
	fmt.Printf("%-14s %12s %12s %14s %14s %12s\n",
		"operator", "time(ms)", "GF/s", "roofline(ms)", "bound", "setup(ms)")
	for i, v := range variants {
		v.apply() // warm up
		best := time.Duration(1 << 62)
		for r := 0; r < *reps; r++ {
			start := time.Now()
			v.apply()
			if el := time.Since(start); el < best {
				best = el
			}
		}
		c := repro[i]
		roof := mach.RooflineTime(c, true) * nel
		bound := "compute"
		if mach.MemoryBound(c, true) {
			bound = "memory"
		}
		gfs := c.Flops * nel / best.Seconds() / 1e9
		fmt.Printf("%-14s %12.3f %12.2f %14.3f %14s %12.1f\n",
			v.name, float64(best.Microseconds())/1000, gfs, roof*1e3, bound,
			float64(v.setup.Microseconds())/1000)
	}
	fmt.Println("\nShape check (paper): Tensor < Matrix-free < Assembled in time;")
	fmt.Println("assembled SpMV memory-bound, matrix-free kernels compute-bound.")

	if *telFlag {
		runTelemetrySolve(p, *workers)
	}
}

// runTelemetrySolve performs one multigrid-preconditioned Stokes solve on
// the Table-I mesh with the full telemetry stack enabled and emits the
// registry as a Table-IV-shaped breakdown plus the JSON snapshot.
func runTelemetrySolve(p *fem.Problem, workers int) {
	reg := telemetry.New()
	par.SetTelemetry(reg.Root().Child("par"))
	defer par.SetTelemetry(nil)
	fem.SetTelemetry(reg.Root().Child("fem"))
	defer fem.SetTelemetry(nil)

	// Give the Table-I problem a nontrivial body force so the solve has a
	// real RHS: variable density under vertical gravity.
	eta := func(x, y, z float64) float64 {
		return math.Exp(2 * math.Sin(3*x) * math.Cos(2*y))
	}
	rho := func(x, y, z float64) float64 {
		return 1 + 0.5*math.Sin(math.Pi*x)*math.Sin(math.Pi*y)*math.Sin(math.Pi*z)
	}
	p.Gravity = [3]float64{0, 0, -9.8}
	p.SetCoefficientsFunc(eta, rho)

	cfg := stokes.DefaultConfig()
	cfg.Workers = workers
	cfg.Telemetry = reg.Root()
	cfg.CoeffCoarsen = mg.FuncCoeffCoarsener(eta, rho)
	// Clamp MG depth to what the mesh supports (each level halves m).
	mEl := p.DA.Mx
	levels := 1
	for c := mEl; c%2 == 0 && c > 2 && levels < 3; c /= 2 {
		levels++
	}
	if levels < 2 {
		fmt.Fprintf(os.Stderr, "telemetry solve skipped: m=%d cannot coarsen\n", mEl)
		return
	}
	cfg.Levels = levels

	s, err := stokes.New(p, cfg)
	if err != nil {
		log.Fatal(err)
	}
	bu := la.NewVec(p.DA.NVelDOF())
	fem.MomentumRHS(p, bu)
	x := la.NewVec(s.Op.N())
	res := s.Solve(x, bu, nil)

	fmt.Printf("\n## Instrumented MG Stokes solve (%d levels): converged=%v its=%d rel=%.2e\n",
		levels, res.Converged, res.Iterations, res.Residual/res.Residual0)
	fmt.Println("\n## Telemetry breakdown (Table-IV shape)")
	reg.WriteTable(os.Stdout)
	fmt.Println("\n## Telemetry (JSON)")
	if err := reg.WriteJSON(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// benchProblem builds the Table-I deformed variable-viscosity problem at
// size m (shared by the default mode and the -json sweep).
func benchProblem(m, workers int) *fem.Problem {
	da := mesh.New(m, m, m, 0, 1, 0, 1, 0, 1)
	da.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + 0.05*math.Sin(math.Pi*y), y + 0.04*math.Sin(math.Pi*z), z + 0.03*x*y
	})
	bc := mesh.NewBC(da)
	bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin)
	p := fem.NewProblem(da, bc)
	p.Workers = workers
	p.SetCoefficientsFunc(func(x, y, z float64) float64 {
		return math.Exp(2 * math.Sin(3*x) * math.Cos(2*y))
	}, nil)
	return p
}

// benchRecord is one (backend, size) measurement in the BENCH_PR4 schema.
type benchRecord struct {
	M        int     `json:"m"`
	N        int     `json:"n"`
	Backend  string  `json:"backend"`
	ApplyMs  float64 `json:"apply_ms"`
	MDoFPerS float64 `json:"mdof_per_s"`
	SetupMs  float64 `json:"setup_ms"`
}

// runJSONBench times each internal/op backend's Apply at each level size
// and writes the BENCH_PR4 JSON document to stdout. The Galerkin backend
// needs an assembled 2× finer mesh, so it is only benchmarked at sizes
// where that matrix stays affordable.
func runJSONBench(grids, only string, workers, reps int) {
	var restrict op.Kind
	restricted := false
	if only != "" {
		k, err := op.ParseKind(only)
		if err != nil {
			log.Fatal(err)
		}
		if k == op.Auto {
			log.Fatal("ptatin-opcost -json: auto is a selector, not a backend; pick mf|mfref|asm|galerkin")
		}
		restrict, restricted = k, true
	}
	var records []benchRecord
	gridList, err := cli.ParseInts(grids)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range gridList {
		p := benchProblem(m, workers)
		kinds := []op.Kind{op.Tensor, op.MFRef, op.Assembled}
		if 2*m <= 16 {
			kinds = append(kinds, op.Galerkin)
		}
		for _, k := range kinds {
			if restricted && k != restrict {
				continue
			}
			env := op.Env{Prob: p, Workers: workers}
			if k == op.Galerkin {
				fine := benchProblem(2*m, workers)
				var fineA *la.CSR
				env.FineCSR = func() *la.CSR {
					if fineA == nil {
						fineA = fem.AssembleViscous(fine)
					}
					return fineA
				}
				prol := mg.NewProlongation(fine.DA, p.DA, fine.BC, p.BC)
				env.Prolong = prol.ToCSR
			}
			o, err := op.New(k, env)
			if err != nil {
				log.Fatalf("m=%d %v: %v", m, k, err)
			}
			setupStart := time.Now()
			if err := o.Setup(); err != nil {
				log.Fatalf("m=%d %v setup: %v", m, k, err)
			}
			setup := time.Since(setupStart)
			n := o.N()
			u, y := la.NewVec(n), la.NewVec(n)
			for i := range u {
				u[i] = math.Sin(float64(i))
			}
			o.Apply(u, y) // warm up
			best := time.Duration(1 << 62)
			for r := 0; r < reps; r++ {
				start := time.Now()
				o.Apply(u, y)
				if el := time.Since(start); el < best {
					best = el
				}
			}
			records = append(records, benchRecord{
				M:        m,
				N:        n,
				Backend:  k.String(),
				ApplyMs:  best.Seconds() * 1e3,
				MDoFPerS: float64(n) / best.Seconds() / 1e6,
				SetupMs:  setup.Seconds() * 1e3,
			})
		}
	}
	mach := perfmodel.CalibratedMachine()
	doc := struct {
		Schema  string `json:"schema"`
		Workers int    `json:"workers"`
		Reps    int    `json:"reps"`
		Machine struct {
			StreamGBs float64 `json:"stream_gb_per_s"`
			FlopGFs   float64 `json:"flop_gf_per_s"`
		} `json:"machine"`
		Results []benchRecord `json:"results"`
	}{Schema: "BENCH_PR4", Workers: workers, Reps: reps, Results: records}
	doc.Machine.StreamGBs = mach.StreamBW / 1e9
	doc.Machine.FlopGFs = mach.FlopRate / 1e9
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		log.Fatal(err)
	}
}
