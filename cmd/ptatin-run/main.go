// Command ptatin-run is the unified scenario driver: it resolves a
// scenario by registered name or JSON spec file, compiles it into a
// model, installs the requested Stokes backend (shared-memory or
// rank-distributed over the simulated fabric), and advances the time
// loop with per-step reporting, checkpoint/restart and optional JSON
// bench records.
//
//	ptatin-run -list                                  # registered scenarios
//	ptatin-run -scenario sinker -steps 3
//	ptatin-run -scenario rift -ranks 2x1x2 -steps 5
//	ptatin-run -scenario my-spec.json -op auto -json run.json
//	ptatin-run -smoke                                 # 2-step smoke of every
//	                                                  # scenario, both backends
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"ptatin3d/internal/cli"
	"ptatin3d/internal/driver"
	"ptatin3d/internal/fem"
	"ptatin3d/internal/model"
	"ptatin3d/internal/par"
	"ptatin3d/internal/scenario"
	"ptatin3d/internal/telemetry"
)

func main() {
	name := flag.String("scenario", "", "registered scenario name or path to a JSON spec file")
	list := flag.Bool("list", false, "list registered scenarios and exit")
	printSpec := flag.Bool("print-spec", false, "print the resolved spec as JSON and exit (a template for custom spec files)")
	smoke := flag.Bool("smoke", false, "compile every registered scenario at small resolution and run 2 steps on both backends")
	steps := flag.Int("steps", 1, "time steps to advance")
	res := flag.String("res", "", "override resolution as mx,my,mz (or a single m for m,m,m)")
	small := flag.Bool("small", false, "use the scenario's small smoke-test resolution")
	ppe := flag.Int("ppe", 0, "material points per element per direction (0 = spec value)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = runtime.NumCPU())")
	ranks := flag.String("ranks", "", "simulated rank grid PxxPyxPz; empty or 1x1x1 = shared-memory backend")
	pipelined := flag.Bool("pipelined", false, "pipelined Krylov on the distributed backend")
	coarseRoots := flag.Int("coarse-roots", 0, "coarse-grid agglomeration roots on the distributed backend")
	opFlag := flag.String("op", "", "fine-level operator representation (auto|mf|mfref|asm|galerkin)")
	blocked := flag.Bool("blocked", false, "cache-blocked wavefront Chebyshev smoothers")
	precFlag := flag.String("precision", "", "V-cycle preconditioner precision (f64|f32)")
	restart := flag.Int("restart", 0, "FGMRES restart window override (0 = spec/default; high viscosity contrast wants >=200)")
	ckptEvery := flag.Int("checkpoint-every", 0, "write a checkpoint every N steps (0 disables)")
	ckptPath := flag.String("checkpoint", "ptatin.chkpt", "checkpoint file path")
	restartFrom := flag.String("restart-from", "", "restore model state from this checkpoint before stepping")
	telFlag := flag.Bool("telemetry", false, "emit the telemetry table + JSON on stderr after the run")
	jsonOut := flag.String("json", "", "write the end-to-end run record as JSON to this file (- for stdout)")
	flag.Parse()
	*workers = cli.Workers(*workers)

	if *list {
		for _, n := range scenario.Names() {
			s, _ := scenario.Get(n)
			fmt.Printf("%-16s %s\n", n, s.Description)
		}
		return
	}
	if *smoke {
		if err := driver.Smoke(*workers, os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "ptatin-run: -scenario required (try -list)")
		os.Exit(2)
	}

	spec, err := scenario.Resolve(*name)
	if err != nil {
		log.Fatal(err)
	}
	if *small {
		spec.Resolution = spec.SmallResolution()
	}
	if *res != "" {
		dims, err := cli.ParseInts(*res)
		if err != nil {
			log.Fatal(err)
		}
		switch len(dims) {
		case 1:
			spec.Resolution = [3]int{dims[0], dims[0], dims[0]}
		case 3:
			spec.Resolution = [3]int{dims[0], dims[1], dims[2]}
		default:
			log.Fatalf("-res wants m or mx,my,mz, got %q", *res)
		}
		spec.Solver.Levels = 0 // re-derive the hierarchy depth
	}
	if *ppe > 0 {
		spec.PPE = *ppe
	}
	if *printSpec {
		b, err := json.MarshalIndent(spec, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(b))
		return
	}

	var reg *telemetry.Registry
	if *telFlag {
		reg = telemetry.New()
		par.SetTelemetry(reg.Root().Child("par"))
		defer par.SetTelemetry(nil)
		fem.SetTelemetry(reg.Root().Child("fem"))
		defer fem.SetTelemetry(nil)
		defer func() {
			fmt.Fprintln(os.Stderr, "\n# Telemetry breakdown")
			reg.WriteTable(os.Stderr)
			fmt.Fprintln(os.Stderr, "\n# Telemetry (JSON)")
			if err := reg.WriteJSON(os.Stderr); err != nil {
				log.Fatal(err)
			}
		}()
	}

	m, err := scenario.Compile(spec, *workers)
	if err != nil {
		log.Fatal(err)
	}
	if reg != nil {
		m.Telemetry = reg.Root().Child("model")
	}
	ov := driver.Overrides{Op: *opFlag, Blocked: *blocked, Precision: *precFlag, Restart: *restart}
	if err := ov.Apply(m); err != nil {
		log.Fatal(err)
	}
	backend, err := driver.Backend(*ranks, *pipelined, *coarseRoots)
	if err != nil {
		log.Fatal(err)
	}
	m.Backend = backend
	if db, ok := backend.(*model.DistributedBackend); ok {
		fmt.Printf("# scenario %s: distributed backend over %d simulated ranks\n", spec.Name, db.Ranks())
	}

	cfg := driver.Config{
		Steps:           *steps,
		CheckpointEvery: *ckptEvery,
		CheckpointPath:  *ckptPath,
		RestartFrom:     *restartFrom,
		Scenario:        spec.Name,
	}
	var jsonFile *os.File
	if *jsonOut == "-" {
		cfg.JSONOut = os.Stdout
	} else if *jsonOut != "" {
		jsonFile, err = os.Create(*jsonOut)
		if err != nil {
			log.Fatal(err)
		}
		cfg.JSONOut = jsonFile
	}
	if err := driver.Run(m, cfg); err != nil {
		log.Fatal(err)
	}
	if jsonFile != nil {
		if err := jsonFile.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# wrote run record to %s\n", *jsonOut)
	}
}
