// Command ptatin-sinker is a thin wrapper over the "sinker" scenario
// (see cmd/ptatin-run for the general driver). It keeps the two
// figure-reproduction modes that are specific to the sedimentation
// benchmark of §IV-A:
//
//	-fig2         run the robustness study: for each Δη, solve the Stokes
//	              problem with GCR + the lower-triangular field-split
//	              preconditioner and print the per-iteration vertical
//	              momentum and pressure residual norms (CSV on stdout).
//	-streamlines  solve once and write fig1_grid.vtk / fig1_points.vtk /
//	              fig1_streamlines.vtk (the Figure 1 visualization).
//	-steps N      advance N time steps (same loop as ptatin-run).
//
// Deprecated for plain time stepping: prefer
//
//	ptatin-run -scenario sinker -res M -steps N
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ptatin3d/internal/cli"
	"ptatin3d/internal/driver"
	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/model"
	"ptatin3d/internal/op"
	"ptatin3d/internal/par"
	"ptatin3d/internal/scenario"
	"ptatin3d/internal/stokes"
	"ptatin3d/internal/telemetry"
)

func main() {
	m := flag.Int("m", 8, "elements per direction (paper: 64)")
	nc := flag.Int("nc", 8, "number of spheres")
	rc := flag.Float64("rc", 0.1, "sphere radius")
	workers := flag.Int("workers", 0, "worker goroutines (0 = runtime.NumCPU())")
	opFlag := flag.String("op", "", "fine-level operator representation (auto|mf|mfref|asm|galerkin)")
	blocked := flag.Bool("blocked", false, "cache-blocked wavefront Chebyshev smoothers (substitutes a resident fine operator inside the hierarchy)")
	precFlag := flag.String("precision", "", "V-cycle preconditioner precision (f64|f32); the outer Krylov method always iterates in f64")
	fig2 := flag.Bool("fig2", false, "run the Δη robustness study (Figure 2)")
	stream := flag.Bool("streamlines", false, "write Figure 1 VTK outputs")
	steps := flag.Int("steps", 0, "time steps to advance")
	outdir := flag.String("outdir", ".", "output directory")
	telFlag := flag.Bool("telemetry", false, "emit the telemetry table + JSON on stderr after the run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	ckptEvery := flag.Int("checkpoint-every", 0, "write a checkpoint every N steps (0 disables)")
	ckptPath := flag.String("checkpoint", "sinker.chkpt", "checkpoint file path")
	restartFrom := flag.String("restart-from", "", "restore model state from this checkpoint before stepping")
	flag.Parse()
	*workers = cli.Workers(*workers)

	if *cpuprofile != "" {
		stop, err := telemetry.StartCPUProfile(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer stop()
	}
	var reg *telemetry.Registry
	if *telFlag {
		reg = telemetry.New()
		par.SetTelemetry(reg.Root().Child("par"))
		defer par.SetTelemetry(nil)
		fem.SetTelemetry(reg.Root().Child("fem"))
		defer fem.SetTelemetry(nil)
		// Table + JSON go to stderr so the CSV/step output stays clean.
		defer func() {
			fmt.Fprintln(os.Stderr, "\n# Telemetry breakdown")
			reg.WriteTable(os.Stderr)
			fmt.Fprintln(os.Stderr, "\n# Telemetry (JSON)")
			if err := reg.WriteJSON(os.Stderr); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *fig2 {
		fineKind := op.Tensor
		if *opFlag != "" {
			k, err := op.ParseKind(*opFlag)
			if err != nil {
				log.Fatal(err)
			}
			fineKind = k
		}
		prec := op.F64
		if *precFlag != "" {
			pr, err := op.ParsePrecision(*precFlag)
			if err != nil {
				log.Fatal(err)
			}
			prec = pr
		}
		runFig2(*m, *nc, *rc, *workers, fineKind, *blocked, prec, reg)
		return
	}

	o := scenario.DefaultSinkerOptions()
	o.M = *m
	o.Nc = *nc
	o.Rc = *rc
	o.Workers = *workers
	mdl := scenario.NewSinker(o)
	ov := driver.Overrides{Op: *opFlag, Blocked: *blocked, Precision: *precFlag}
	if err := ov.Apply(mdl); err != nil {
		log.Fatal(err)
	}
	if reg != nil {
		mdl.Telemetry = reg.Root().Child("model")
	}

	if *stream {
		if *restartFrom != "" {
			if err := mdl.LoadCheckpoint(*restartFrom); err != nil {
				log.Fatal(err)
			}
		}
		if _, err := mdl.SolveStokes(); err != nil {
			log.Fatal(err)
		}
		must(mdl.WriteVTK(*outdir + "/fig1_grid.vtk"))
		must(mdl.WritePointsVTK(*outdir + "/fig1_points.vtk"))
		var seeds [][3]float64
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				seeds = append(seeds, [3]float64{0.1 + 0.2*float64(i), 0.1 + 0.2*float64(j), 0.9})
			}
		}
		must(mdl.WriteStreamlinesVTK(*outdir+"/fig1_streamlines.vtk", seeds, 0.02, 400))
		fmt.Println("wrote fig1_grid.vtk, fig1_points.vtk, fig1_streamlines.vtk")
		return
	}

	if err := driver.Run(mdl, driver.Config{
		Steps:           *steps,
		CheckpointEvery: *ckptEvery,
		CheckpointPath:  *ckptPath,
		RestartFrom:     *restartFrom,
		Scenario:        "sinker",
	}); err != nil {
		log.Fatal(err)
	}
}

// runFig2 reproduces Figure 2: residual equilibration and convergence as
// a function of the viscosity contrast.
func runFig2(m, nc int, rc float64, workers int, fineKind op.Kind, blocked bool, prec op.Precision, reg *telemetry.Registry) {
	fmt.Println("# Figure 2 reproduction: vertical momentum vs pressure residual")
	fmt.Println("# columns: delta_eta, iteration, momentum_resid, vertical_resid, pressure_resid")
	for _, deta := range []float64{1, 1e2, 1e4} {
		o := scenario.DefaultSinkerOptions()
		o.M = m
		o.Nc = nc
		o.Rc = rc
		o.DeltaEta = deta
		o.Workers = workers
		mdl := scenario.NewSinker(o)

		cfg := mdl.Cfg
		cfg.Workers = workers
		cfg.Params.MaxIt = 1000
		cfg.CoeffCoarsen = nil // set below via the model's projection
		// Use the model's projected coefficients (the MPM pipeline).
		mdl.UpdateCoefficients(la.NewVec(mdl.Prob.DA.NVelDOF()+mdl.Prob.DA.NPresDOF()), false)
		cfg = mdl.Cfg
		cfg.Params.MaxIt = 1000
		cfg.FineKind = fineKind
		cfg.Blocked = blocked
		cfg.Precision = prec
		if reg != nil {
			cfg.Telemetry = reg.Root().Child(fmt.Sprintf("deta%g", deta))
		}

		s, err := stokes.New(mdl.Prob, withModelCoarsener(mdl, cfg))
		if err != nil {
			log.Fatal(err)
		}
		bu := la.NewVec(mdl.Prob.DA.NVelDOF())
		fem.MomentumRHS(mdl.Prob, bu)
		x := la.NewVec(s.Op.N())
		mon := &stokes.Monitor{}
		res := s.Solve(x, bu, mon)
		for i := range mon.Iter {
			fmt.Printf("%g, %d, %.6e, %.6e, %.6e\n",
				deta, mon.Iter[i], mon.Momentum[i], mon.Vertical[i], mon.Pressure[i])
		}
		fmt.Fprintf(os.Stderr, "delta_eta=%g: converged=%v iterations=%d rel=%.2e\n",
			deta, res.Converged, res.Iterations, res.Residual/res.Residual0)
		if fineKind == op.Auto {
			fmt.Fprintln(os.Stderr, "# operator auto-selection")
			for _, d := range s.SelectionReport() {
				fmt.Fprintln(os.Stderr, "#   "+d.Summary())
			}
		}
	}
}

// withModelCoarsener installs the model's projected vertex fields as the
// multigrid coefficient coarsener.
func withModelCoarsener(m *model.Model, cfg stokes.Config) stokes.Config {
	cfg.CoeffCoarsen = m.CoeffCoarsener()
	return cfg
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
