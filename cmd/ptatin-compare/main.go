// Command ptatin-compare regenerates Table IV of the paper: the
// preconditioner shoot-out between the matrix-free geometric multigrid
// (GMG-i), the fully assembled Galerkin geometric multigrid (GMG-ii), and
// three purely algebraic smoothed-aggregation configurations (SA-i:
// GAMG-like; SAML-i: ML-like with drop tolerance; SAML-ii: ML-like with
// the stronger FGMRES(2)/ILU(0) smoother). For each configuration it
// reports Krylov iterations and the wall time spent in SpMV ("MatMult"),
// preconditioner setup, preconditioner application, and the complete
// Stokes solve.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ptatin3d/internal/cli"
	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/op"
	"ptatin3d/internal/scenario"
	"ptatin3d/internal/stokes"
)

type config struct {
	name string
	mut  func(*stokes.Config)
}

func main() {
	m := flag.Int("m", 8, "elements per direction (paper: 64)")
	deta := flag.Float64("deta", 100, "viscosity contrast")
	workers := flag.Int("workers", 0, "worker goroutines (0 = runtime.NumCPU())")
	flag.Parse()
	*workers = cli.Workers(*workers)

	configs := []config{
		{"GMG-i", func(c *stokes.Config) {
			// Paper's preferred configuration: matrix-free tensor fine
			// level, rediscretized middle, Galerkin coarsest, GAMG coarse
			// solve.
			c.FineKind = op.Tensor
			c.CoarseSolver = "gamg"
		}},
		{"GMG-ii", func(c *stokes.Config) {
			// Fully assembled: fine level assembled, all coarse operators
			// Galerkin.
			c.FineKind = op.Assembled
			c.GalerkinAll = true
			c.CoarseSolver = "gamg"
		}},
		{"SA-i", func(c *stokes.Config) {
			c.Levels = 1
			c.FineKind = op.Assembled
			c.AMGConfig = "gamg"
		}},
		{"SAML-i", func(c *stokes.Config) {
			c.Levels = 1
			c.FineKind = op.Assembled
			c.AMGConfig = "ml"
		}},
		{"SAML-ii", func(c *stokes.Config) {
			c.Levels = 1
			c.FineKind = op.Assembled
			c.AMGConfig = "mlstrong"
		}},
	}

	fmt.Printf("# Table IV reproduction — %d³ elements, Δη=%g, %d workers\n", *m, *deta, *workers)
	fmt.Printf("%-8s %5s %12s %12s %12s %12s\n",
		"config", "its", "MatMult(s)", "PCsetup(s)", "PCapply(s)", "Solve(s)")

	var gmgiTime float64
	for _, cf := range configs {
		o := scenario.DefaultSinkerOptions()
		o.M = *m
		o.DeltaEta = *deta
		o.Workers = *workers
		mdl := scenario.NewSinker(o)
		mdl.UpdateCoefficients(la.NewVec(mdl.Prob.DA.NVelDOF()+mdl.Prob.DA.NPresDOF()), false)

		cfg := mdl.Cfg
		cfg.Workers = *workers
		cfg.Params.MaxIt = 1500
		cfg.CoeffCoarsen = mdl.CoeffCoarsener()
		cf.mut(&cfg)

		s, err := stokes.New(mdl.Prob, cfg)
		if err != nil {
			log.Fatalf("%s: %v", cf.name, err)
		}
		bu := la.NewVec(mdl.Prob.DA.NVelDOF())
		fem.MomentumRHS(mdl.Prob, bu)
		x := la.NewVec(s.Op.N())
		start := time.Now()
		res := s.Solve(x, bu, nil)
		solve := time.Since(start).Seconds()
		if !res.Converged {
			fmt.Printf("%-8s FAILED after %d iterations (rel %.2e)\n", cf.name, res.Iterations, res.Residual/res.Residual0)
			continue
		}
		fmt.Printf("%-8s %5d %12.3f %12.3f %12.3f %12.3f\n",
			cf.name, res.Iterations,
			s.MatMult.Elapsed().Seconds(), s.SetupTime.Seconds(),
			s.PCApply.Elapsed().Seconds(), solve)
		if cf.name == "GMG-i" {
			gmgiTime = solve
		} else if gmgiTime > 0 {
			fmt.Printf("         (GMG-i is %.1fx faster)\n", solve/gmgiTime)
		}
	}
	fmt.Println("\n# Shape check (paper): GMG-ii lowest iterations; GMG-i fastest")
	fmt.Println("# time-to-solution (paper: 1.7x vs GMG-ii, 3.3-12.4x vs SA/SAML).")
}
