package ptatin3d_test

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"ptatin3d/internal/comm"
	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/op"
	"ptatin3d/internal/scenario"
	"ptatin3d/internal/stokes"
	"ptatin3d/internal/telemetry"
)

// sinker3Problem builds the 3-sinker §IV-B configuration with projected
// coefficients installed, the same geometry the golden_sinker3 record pins.
func sinker3Problem() *fem.Problem {
	o := scenario.DefaultSinkerOptions()
	o.M = 8
	o.Nc = 3
	o.Rc = 0.18
	o.DeltaEta = 100
	mdl := scenario.NewSinker(o)
	mdl.UpdateCoefficients(la.NewVec(mdl.Prob.DA.NVelDOF()+mdl.Prob.DA.NPresDOF()), false)
	return mdl.Prob
}

// TestGoldenRecoverySinker3 is the end-to-end fault/recovery regression:
// the 3-sinker viscous operator is applied across a 2×2 rank decomposition
// while the fault plan drops four halo envelopes and stalls rank 1 at its
// first exchange. The reliable-exchange layer must recover every payload —
// the distributed result is checked against the sequential operator to
// solver precision — and afterwards the standard solve must still match
// the golden_sinker3 record, proving recovery leaves no numerical residue.
func TestGoldenRecoverySinker3(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	prob := sinker3Problem()
	da := prob.DA
	n := da.NVelDOF()

	u := la.NewVec(n)
	for i := range u {
		// Deterministic, smooth, nonzero test field.
		u[i] = math.Sin(0.1*float64(i)) + 0.01*float64(i%7)
	}
	ref := la.NewVec(n)
	fem.NewTensor(prob).Apply(u, ref)

	d, err := comm.NewDecomp(da, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	w := comm.NewWorld(d.Size())
	fp := &comm.FaultPlan{
		Seed: 42, DropProb: 1, MaxDrops: 4,
		StallRank: 1, StallExchange: 0, StallDuration: 50 * time.Millisecond,
	}
	w.SetFaultPlan(fp)
	w.SetRetryPolicy(comm.RetryPolicy{Timeout: 25 * time.Millisecond, MaxRetries: 10, Backoff: 1.5})

	reg := telemetry.New()
	results := make([]la.Vec, d.Size())
	var mu sync.Mutex
	w.Run(func(r *comm.Rank) {
		y := la.NewVec(n)
		sc := reg.Root().Child("halo").Child(fmt.Sprintf("rank%d", r.ID))
		if err := comm.DistributedViscousApply(r, d, prob, fem.NewTensor(prob), u, y, sc); err != nil {
			t.Errorf("rank %d: %v", r.ID, err)
		}
		mu.Lock()
		results[r.ID] = y
		mu.Unlock()
	})

	// The full fault budget must have been spent and recovered from.
	if fp.Drops() != 4 {
		t.Errorf("injected %d drops, want 4", fp.Drops())
	}
	if fp.Stalls() != 1 {
		t.Errorf("injected %d stalls, want 1", fp.Stalls())
	}
	var retries int64
	for rid := 0; rid < d.Size(); rid++ {
		retries += reg.Root().Child("halo").Child(fmt.Sprintf("rank%d", rid)).Counter("retries").Value()
	}
	if retries == 0 {
		t.Error("faults recovered without a single retry — injection did not reach the exchange path")
	}

	// Every rank's result must match the sequential operator on the nodes
	// it touches, to the same tolerance the fault-free distributed test
	// uses: recovery must be exact, not approximate.
	scale := ref.NormInf()
	var nodes [27]int32
	for rid := 0; rid < d.Size(); rid++ {
		touched := map[int32]bool{}
		for _, e := range d.LocalElements(rid) {
			da.ElemNodes(e, &nodes)
			for _, nn := range nodes {
				touched[nn] = true
			}
		}
		for nn := range touched {
			for c := 0; c < 3; c++ {
				dd := 3*int(nn) + c
				if math.Abs(results[rid][dd]-ref[dd]) > 1e-11*scale {
					t.Fatalf("rank %d node %d comp %d: %v, want %v after recovery",
						rid, nn, c, results[rid][dd], ref[dd])
				}
			}
		}
	}

	// The standard solve on the same configuration must still reproduce the
	// golden record.
	rec := sinker3Record(t, op.Tensor, false, op.F64)
	checkGolden(t, "golden_sinker3", rec, stokes.DefaultConfig().Params.RTol)
}
