#!/bin/sh
# Tier-1 gate for the repository (see README.md): formatting, vet, build,
# the full test suite, and a short-mode pass under the race detector.
# Every PR must leave this script exiting 0.
#
# Usage: scripts/check.sh  (from the repository root or any subdirectory)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -short -race =="
go test -short -race ./...

echo "OK"
