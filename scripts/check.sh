#!/usr/bin/env bash
# Tier-1 gate for the repository (see README.md): formatting, vet, build,
# the full test suite, a short-mode pass under the race detector, a racy
# re-run of the comm fault/recovery protocol tests, a one-iteration smoke
# run of the apply-path benchmarks, and short fuzz smoke passes over the
# decomposition index math and the checkpoint decoder.
# Every PR must leave this script exiting 0.
#
# Usage: scripts/check.sh  (from the repository root or any subdirectory)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== operator representation equivalence =="
go test -run='^TestOpEquivalence$' -count=1 ./internal/op

echo "== go test -short -race =="
go test -short -race ./...

echo "== fault/recovery protocol under -race =="
go test -race -run 'Fault|Reliable|Migrate|Recv' ./internal/comm ./internal/mpm

echo "== 64-rank fault-injection soak under -race (bounded: -short) =="
go test -short -race -run 'TestSoakReliableExchange64Ranks' ./internal/comm

echo "== pipelined Krylov + coarse agglomeration under -race =="
go test -race -run 'TestPipelined|TestDistMGAgg|TestAllReduceSumVec' ./internal/krylov ./internal/mg ./internal/comm

echo "== f32/f64 equivalence + blocked smoother determinism under -race =="
go test -race \
    -run 'TestF32OpEquivalence|TestAutoCacheKeyedByPrecision|TestResidentMatchesTensor|TestResidentDeterminism|TestBlockedChebyshevBitIdentical|TestMGBlockedVCycleBitIdentical|TestMGF32Converges|TestDistMGBlockedMatchesSerial|TestBlockedSolveMatchesUnblocked|TestF32PreconditionedConvergence' \
    ./internal/op ./internal/fem ./internal/mg ./internal/stokes

echo "== parallel MPM + amortized solver setup under -race =="
go test -race \
    -run 'TestProjectorMatchesSerialAnyWorkers|TestProjectorInvalidate|TestLocateAllParallelMatchesSerial|TestBucketedNearestMatchesScan|TestCachedSetupMatchesColdBuild|TestKrylovWarmStart' \
    ./internal/mpm ./internal/model

echo "== blocked smoother bench smoke (fails on >10% blocked-vs-unblocked regression) =="
go run ./cmd/ptatin-opcost -vcycle -m 12 -levels 2 -reps 3 -vcycle-parity=false -vcycle-gate 1.1 > /dev/null

echo "== scenario smoke: every registered spec, 2 steps, shared + distributed =="
go run ./cmd/ptatin-run -smoke -workers 2

echo "== rank-distributed solve under -race =="
go run -race ./cmd/ptatin-scaling -ranks 2x1x1 -grids 8

echo "== scaling sweep smoke (bounded rank count) =="
go run ./cmd/ptatin-scaling -sweep -sweep-max-ranks 8

echo "== benchmark smoke =="
go test -run='^$' -bench=Apply -benchtime=1x ./...

echo "== fuzz smoke =="
go test ./internal/comm -run='^$' -fuzz=FuzzDecompIndexMath -fuzztime=5s
go test ./internal/chkpt -run='^$' -fuzz=FuzzDecode -fuzztime=5s

echo "OK"
