#!/usr/bin/env bash
# Machine-readable benchmark for the current PR: end-to-end coupled step
# time through the unified scenario driver. Runs the sinker scenario for
# a few full time steps (MPM projection, rheology, nonlinear Stokes,
# free surface) on the shared-memory backend and rank-distributed over a
# 2x1x1 simulated world, and writes both run records — per-step wall
# time, Newton/Krylov iteration counts and fabric traffic — to
# BENCH_PR8.json.
#
# Usage: scripts/bench.sh [outfile] [m] [steps]
#   outfile   destination JSON (default BENCH_PR8.json in the repo root)
#   m         elements per direction (default 16)
#   steps     time steps per backend (default 3)
#
# Previous PR benchmarks remain available:
#   BENCH_PR7: go run ./cmd/ptatin-opcost -vcycle -m 16 -workers 1 -reps 5
#   BENCH_PR6: go run ./cmd/ptatin-scaling -sweep -json
#   BENCH_PR5: go run ./cmd/ptatin-scaling -json -ranks 2x2x1 -grids 8,16
#   BENCH_PR4: go run ./cmd/ptatin-opcost -json
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_PR8.json}"
m="${2:-16}"
steps="${3:-3}"

tmp_shared=$(mktemp)
tmp_dist=$(mktemp)
trap 'rm -f "$tmp_shared" "$tmp_dist"' EXIT

go run ./cmd/ptatin-run -scenario sinker -res "$m" -steps "$steps" \
    -json "$tmp_shared" > /dev/null
go run ./cmd/ptatin-run -scenario sinker -res "$m" -steps "$steps" \
    -ranks 2x1x1 -json "$tmp_dist" > /dev/null

# Bundle the two run records into one file.
{
    echo '{'
    echo '  "shared":'
    sed 's/^/  /' "$tmp_shared"
    echo '  ,'
    echo '  "distributed":'
    sed 's/^/  /' "$tmp_dist"
    echo '}'
} > "$out"

echo "wrote $out:"
head -n 14 "$out"
