#!/usr/bin/env bash
# Machine-readable operator benchmark: times every unified-operator
# backend (internal/op) at each level size and writes BENCH_PR4.json —
# MDoF/s, best-of apply time and setup time per backend per size, plus
# the calibrated machine balance the auto-selector seeds from.
#
# Usage: scripts/bench.sh [outfile] [grids] [workers] [reps]
#   outfile  destination JSON (default BENCH_PR4.json in the repo root)
#   grids    comma-separated level sizes (default 4,8,12)
#   workers  worker goroutines (default 0 = runtime.NumCPU())
#   reps     best-of timing repetitions (default 5)
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_PR4.json}"
grids="${2:-4,8,12}"
workers="${3:-0}"
reps="${4:-5}"

go run ./cmd/ptatin-opcost -json -grids "$grids" -workers "$workers" -reps "$reps" > "$out"
echo "wrote $out:"
head -n 12 "$out"
