#!/usr/bin/env bash
# Machine-readable benchmark for the current PR: end-to-end coupled
# steps/sec through the unified scenario driver with the amortized
# solver setup and parallel material-point pipeline. Runs the sinker and
# rayleigh-taylor scenarios for a few full time steps (MPM projection,
# rheology, nonlinear Stokes, free surface) on the shared-memory backend
# and rank-distributed over a 2x1x1 simulated world, and writes all four
# run records — per-step wall time, the per-stage breakdown
# (stokes_setup_s / stokes_krylov_s / mpm_project_s / rheology_s /
# advect_s / ale_s / thermal_s), the stokes_setup_reused counter, and
# Newton/Krylov iteration counts — to BENCH_PR9.json.
#
# Usage: scripts/bench.sh [outfile] [m] [steps]
#   outfile   destination JSON (default BENCH_PR9.json in the repo root)
#   m         elements per direction (default 16)
#   steps     time steps per backend (default 3)
#
# Previous PR benchmarks remain available:
#   BENCH_PR8: scripts/bench.sh BENCH_PR8.json 16 3 (sinker only, pre-amortization)
#   BENCH_PR7: go run ./cmd/ptatin-opcost -vcycle -m 16 -workers 1 -reps 5
#   BENCH_PR6: go run ./cmd/ptatin-scaling -sweep -json
#   BENCH_PR5: go run ./cmd/ptatin-scaling -json -ranks 2x2x1 -grids 8,16
#   BENCH_PR4: go run ./cmd/ptatin-opcost -json
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_PR9.json}"
m="${2:-16}"
steps="${3:-3}"

bin=$(mktemp -u /tmp/ptatin-run-bench.XXXXXX)
go build -o "$bin" ./cmd/ptatin-run

sink_shared=$(mktemp); sink_dist=$(mktemp)
rt_shared=$(mktemp); rt_dist=$(mktemp)
trap 'rm -f "$bin" "$sink_shared" "$sink_dist" "$rt_shared" "$rt_dist"' EXIT

run_pair() {
    local scen="$1" shared_out="$2" dist_out="$3"
    "$bin" -scenario "$scen" -res "$m" -steps "$steps" \
        -json "$shared_out" > /dev/null
    "$bin" -scenario "$scen" -res "$m" -steps "$steps" \
        -ranks 2x1x1 -json "$dist_out" > /dev/null
}

run_pair sinker "$sink_shared" "$sink_dist"
run_pair rayleigh-taylor "$rt_shared" "$rt_dist"

# Bundle the four run records into one file.
{
    echo '{'
    echo '  "sinker_shared":'
    sed 's/^/  /' "$sink_shared"
    echo '  ,'
    echo '  "sinker_distributed":'
    sed 's/^/  /' "$sink_dist"
    echo '  ,'
    echo '  "rayleigh_taylor_shared":'
    sed 's/^/  /' "$rt_shared"
    echo '  ,'
    echo '  "rayleigh_taylor_distributed":'
    sed 's/^/  /' "$rt_dist"
    echo '}'
} > "$out"

echo "wrote $out:"
head -n 14 "$out"
