#!/usr/bin/env bash
# Machine-readable benchmark for the current PR: runs the weak+strong
# scaling sweep of the rank-distributed Stokes solve in its
# latency-tolerant configuration — pipelined single-reduce Krylov,
# agglomerated coarse solve, alpha-beta fabric model — over 1..512
# simulated ranks and writes BENCH_PR6.json (ptatin-scaling -sweep
# -json): iterations, time-to-solution, per-rank allreduces per
# iteration (the headline: ~1 for the pipelined variants vs 2+
# classical), halo traffic, and the modeled fabric nanoseconds.
#
# Usage: scripts/bench.sh [outfile] [maxranks]
#   outfile   destination JSON (default BENCH_PR6.json in the repo root)
#   maxranks  skip sweep points above this rank count (default 512; the
#             full 512-rank sweep takes tens of minutes on one core —
#             pass 64 for a quick bounded run)
#
# Previous PR benchmarks remain available:
#   BENCH_PR5: go run ./cmd/ptatin-scaling -json -ranks 2x2x1 -grids 8,16
#   BENCH_PR4: go run ./cmd/ptatin-opcost -json
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_PR6.json}"
maxranks="${2:-512}"

go run ./cmd/ptatin-scaling -sweep -sweep-max-ranks "$maxranks" -json > "$out"
echo "wrote $out:"
head -n 12 "$out"
