#!/usr/bin/env bash
# Machine-readable benchmark for the current PR: runs the
# rank-distributed Stokes solve over a simulated MPI rank grid and
# writes BENCH_PR5.json — iterations, time-to-solution, per-rank halo
# bytes/message/allreduce counts, and the analytic halo-volume
# prediction of the performance model (ptatin-scaling -ranks -json).
#
# Usage: scripts/bench.sh [outfile] [grids] [ranks]
#   outfile  destination JSON (default BENCH_PR5.json in the repo root)
#   grids    comma-separated grid sizes (default 8,16; sizes the rank
#            grid cannot decompose evenly at every MG level are skipped)
#   ranks    rank grid PxxPyxPz (default 2x2x1)
#
# The previous PR's operator benchmark (BENCH_PR4 schema) remains
# available via: go run ./cmd/ptatin-opcost -json > BENCH_PR4.json
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_PR5.json}"
grids="${2:-8,16}"
ranks="${3:-2x2x1}"

go run ./cmd/ptatin-scaling -json -ranks "$ranks" -grids "$grids" > "$out"
echo "wrote $out:"
head -n 12 "$out"
