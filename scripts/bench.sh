#!/usr/bin/env bash
# Machine-readable benchmark for the current PR: times the multigrid
# V-cycle smoother configurations of the mixed-precision work — the
# unblocked f64 baseline every earlier PR benchmarked, the cache-blocked
# f64 wavefront smoother, and the cache-blocked float32 hierarchy — and
# runs the Δη=10⁶ sinker contrast solve in both precisions to record
# outer-iteration parity. Writes BENCH_PR7.json (ptatin-opcost -vcycle):
# fine-smoother and whole-V-cycle times per configuration, the headline
# blocked/f32 speedups (target: ≥2x on the smoother), and the f64-vs-f32
# FGMRES iteration counts.
#
# Usage: scripts/bench.sh [outfile] [m]
#   outfile   destination JSON (default BENCH_PR7.json in the repo root)
#   m         fine-grid elements per direction (default 16; the timing
#             grid — the parity solve is fixed at 8³)
#
# Previous PR benchmarks remain available:
#   BENCH_PR6: go run ./cmd/ptatin-scaling -sweep -json
#   BENCH_PR5: go run ./cmd/ptatin-scaling -json -ranks 2x2x1 -grids 8,16
#   BENCH_PR4: go run ./cmd/ptatin-opcost -json
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_PR7.json}"
m="${2:-16}"

go run ./cmd/ptatin-opcost -vcycle -m "$m" -workers 1 -reps 5 > "$out"
echo "wrote $out:"
head -n 12 "$out"
