module ptatin3d

go 1.22
