package ptatin3d_test

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/mg"
	"ptatin3d/internal/op"
	"ptatin3d/internal/scenario"
	"ptatin3d/internal/stokes"
	"ptatin3d/internal/telemetry"
)

// updateGolden regenerates the testdata/ golden files instead of checking
// against them:
//
//	go test -run Golden -update .
var updateGolden = flag.Bool("update", false, "rewrite golden regression files")

// goldenRecord is the persisted summary of one deterministic reference
// solve: outer Krylov behaviour plus the telemetry counters that encode
// the multigrid work balance.
type goldenRecord struct {
	Iterations int              `json:"iterations"`
	Converged  bool             `json:"converged"`
	Residual0  float64          `json:"residual0"`
	FinalRel   float64          `json:"final_rel_residual"`
	Counters   map[string]int64 `json:"counters"`
}

// goldenCounters names the telemetry counters captured in the record; the
// last path element is the counter name, the rest the scope path.
var goldenCounters = [][]string{
	{"krylov", "iterations"},
	{"krylov", "solves"},
	{"mg", "cycles"},
	{"mg", "level0", "smooth_applies"},
	{"mg", "level0", "op_applies"},
	{"mg", "coarse", "solves"},
}

func counterAt(sn *telemetry.ScopeSnapshot, path []string) int64 {
	sc := sn.Find(path[:len(path)-1]...)
	if sc == nil {
		return -1
	}
	return sc.Counters[path[len(path)-1]]
}

// solveGolden runs one Stokes solve with telemetry attached and collapses
// it into a goldenRecord.
func solveGolden(t *testing.T, p *fem.Problem, cfg stokes.Config) goldenRecord {
	t.Helper()
	reg := telemetry.New()
	cfg.Telemetry = reg.Root()
	s, err := stokes.New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bu := la.NewVec(p.DA.NVelDOF())
	fem.MomentumRHS(p, bu)
	x := la.NewVec(s.Op.N())
	res := s.Solve(x, bu, nil)

	rec := goldenRecord{
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Residual0:  res.Residual0,
		FinalRel:   res.Residual / res.Residual0,
		Counters:   map[string]int64{},
	}
	sn := reg.Root().Snapshot()
	for _, path := range goldenCounters {
		name := ""
		for i, e := range path {
			if i > 0 {
				name += "."
			}
			name += e
		}
		rec.Counters[name] = counterAt(sn, path)
	}
	return rec
}

// sinker3Record solves the 3-sinker configuration (paper §IV-B geometry at
// reduced resolution, 3 spheres, Δη=100) directly with the production GMG
// preconditioner.
func sinker3Record(t *testing.T, kind op.Kind, blocked bool, prec op.Precision) goldenRecord {
	o := scenario.DefaultSinkerOptions()
	o.M = 8
	o.Nc = 3
	o.Rc = 0.18
	o.DeltaEta = 100
	mdl := scenario.NewSinker(o)
	mdl.UpdateCoefficients(la.NewVec(mdl.Prob.DA.NVelDOF()+mdl.Prob.DA.NPresDOF()), false)
	cfg := mdl.Cfg
	cfg.FineKind = kind
	cfg.Blocked = blocked
	cfg.Precision = prec
	cfg.CoeffCoarsen = mdl.CoeffCoarsener()
	return solveGolden(t, mdl.Prob, cfg)
}

// rayleighTaylorRecord solves a two-layer Rayleigh–Taylor configuration: a
// dense, stiff layer overlying a weak one in a free-slip box.
func rayleighTaylorRecord(t *testing.T) goldenRecord {
	da := mesh.New(8, 8, 8, 0, 1, 0, 1, 0, 1)
	bc := mesh.NewBC(da)
	bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin, mesh.ZMax)
	p := fem.NewProblem(da, bc)
	p.Gravity = [3]float64{0, 0, -1}
	iface := func(x, y float64) float64 {
		return 0.5 + 0.04*math.Cos(2*math.Pi*x)*math.Cos(2*math.Pi*y)
	}
	eta := func(x, y, z float64) float64 {
		if z > iface(x, y) {
			return 10
		}
		return 1
	}
	rho := func(x, y, z float64) float64 {
		if z > iface(x, y) {
			return 1.2
		}
		return 1
	}
	p.SetCoefficientsFunc(eta, rho)
	cfg := stokes.DefaultConfig()
	cfg.CoeffCoarsen = mg.FuncCoeffCoarsener(eta, rho)
	return solveGolden(t, p, cfg)
}

func goldenPath(name string) string {
	return filepath.Join("testdata", name+".json")
}

// checkGolden compares a freshly computed record against the stored golden
// file (or rewrites the file under -update). Tolerances are deliberately
// loose enough to absorb floating-point drift across architectures while
// still catching algorithmic regressions: iteration counts within
// max(2, 15%), work counters within 30%, the initial residual (a pure
// discretization quantity) to 1e-6 relative, and the final relative
// residual no worse than both the solver tolerance and 10× the golden.
func checkGolden(t *testing.T, name string, got goldenRecord, rtol float64) {
	t.Helper()
	path := goldenPath(name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s: %+v", path, got)
		return
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	var want goldenRecord
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("corrupt golden file %s: %v", path, err)
	}

	if got.Converged != want.Converged {
		t.Errorf("%s: converged=%v, golden %v", name, got.Converged, want.Converged)
	}
	itTol := int(math.Ceil(0.15 * float64(want.Iterations)))
	if itTol < 2 {
		itTol = 2
	}
	if d := got.Iterations - want.Iterations; d < -itTol || d > itTol {
		t.Errorf("%s: iterations=%d, golden %d (tol ±%d)", name, got.Iterations, want.Iterations, itTol)
	}
	if rel := math.Abs(got.Residual0-want.Residual0) / want.Residual0; rel > 1e-6 {
		t.Errorf("%s: residual0=%.12e, golden %.12e (rel %.2e)", name, got.Residual0, want.Residual0, rel)
	}
	if got.FinalRel > rtol || got.FinalRel > 10*want.FinalRel {
		t.Errorf("%s: final relative residual %.3e (golden %.3e, rtol %.1e)",
			name, got.FinalRel, want.FinalRel, rtol)
	}
	for k, wv := range want.Counters {
		gv, ok := got.Counters[k]
		if !ok || gv < 0 {
			t.Errorf("%s: counter %s missing (got %d)", name, k, gv)
			continue
		}
		slack := int64(math.Ceil(0.30 * float64(wv)))
		if slack < 4 {
			slack = 4
		}
		if d := gv - wv; d < -slack || d > slack {
			t.Errorf("%s: counter %s=%d, golden %d (tol ±%d)", name, k, gv, wv, slack)
		}
	}
	if t.Failed() {
		t.Logf("%s: got %+v", name, got)
	}
}

// TestGoldenSinker3 is the 3-sinker golden regression run.
func TestGoldenSinker3(t *testing.T) {
	rec := sinker3Record(t, op.Tensor, false, op.F64)
	checkGolden(t, "golden_sinker3", rec, stokes.DefaultConfig().Params.RTol)
}

// TestGoldenSinker3F32 is the mixed-precision golden regression run: the
// same 3-sinker configuration preconditioned by the cache-blocked float32
// V-cycle. It has its own golden file — the f32 hierarchy legitimately
// changes the preconditioner, so iteration counts may differ from the f64
// golden by a hair — but the tolerances are the shared checkGolden ones,
// so any f32-path regression (divergence, extra cycles, lost smoother
// applies) trips it.
func TestGoldenSinker3F32(t *testing.T) {
	rec := sinker3Record(t, op.Tensor, true, op.F32)
	checkGolden(t, "golden_sinker3_f32", rec, stokes.DefaultConfig().Params.RTol)
}

// TestGoldenSinker3Backends re-runs the 3-sinker golden configuration
// under every explicit fine-level operator representation: the choice of
// representation changes only how A·x is computed, so the solver must
// reproduce the same golden record regardless of -op.
func TestGoldenSinker3Backends(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: explicit-backend golden sweep skipped")
	}
	for _, k := range []op.Kind{op.MFRef, op.Assembled, op.Galerkin} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			rec := sinker3Record(t, k, false, op.F64)
			checkGolden(t, "golden_sinker3", rec, stokes.DefaultConfig().Params.RTol)
		})
	}
}

// TestGoldenRayleighTaylor is the Rayleigh–Taylor golden regression run.
func TestGoldenRayleighTaylor(t *testing.T) {
	rec := rayleighTaylorRecord(t)
	checkGolden(t, "golden_rayleigh_taylor", rec, stokes.DefaultConfig().Params.RTol)
}

// TestGoldenResidualTrace cross-checks the telemetry residual series
// against the solver result on the Rayleigh–Taylor configuration: the
// trace must be present, start at Residual0 and end at the converged
// residual — guaranteeing the per-iteration data behind Figure 2 stays
// wired through the telemetry layer.
func TestGoldenResidualTrace(t *testing.T) {
	da := mesh.New(4, 4, 4, 0, 1, 0, 1, 0, 1)
	bc := mesh.NewBC(da)
	bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin, mesh.ZMax)
	p := fem.NewProblem(da, bc)
	p.Gravity = [3]float64{0, 0, -1}
	p.SetCoefficientsFunc(
		func(x, y, z float64) float64 { return 1 },
		func(x, y, z float64) float64 { return 1 + 0.2*z },
	)
	reg := telemetry.New()
	cfg := stokes.DefaultConfig()
	cfg.Levels = 2
	cfg.Telemetry = reg.Root()
	s, err := stokes.New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bu := la.NewVec(p.DA.NVelDOF())
	fem.MomentumRHS(p, bu)
	x := la.NewVec(s.Op.N())
	res := s.Solve(x, bu, nil)
	if !res.Converged {
		t.Fatalf("solve failed after %d its", res.Iterations)
	}
	sn := reg.Root().Snapshot()
	kr := sn.Find("krylov")
	if kr == nil {
		t.Fatal("no krylov telemetry scope")
	}
	trace := kr.Series["residual"]
	if len(trace) < 2 {
		t.Fatalf("residual trace too short: %v", trace)
	}
	if trace[0] != res.Residual0 {
		t.Errorf("trace[0]=%v, Residual0=%v", trace[0], res.Residual0)
	}
	if last := trace[len(trace)-1]; last != res.Residual {
		t.Errorf("trace end=%v, Residual=%v", last, res.Residual)
	}
	for i := 1; i < len(trace); i++ {
		if trace[i] > trace[0]*1e3 {
			t.Errorf("residual trace diverged at %d: %v", i, trace[i])
		}
	}
}
