// Package ptatin3d is a from-scratch Go reproduction of
//
//	May, Brown & Le Pourhiet, "pTatin3D: High-Performance Methods for
//	Long-Term Lithospheric Dynamics", SC 2014,
//
// a geodynamics modelling package combining the material-point method
// for composition tracking with a mixed Q2–P1(disc) finite element
// discretization of heterogeneous, incompressible visco-plastic Stokes
// flow. The solver is a flexible Krylov method (GCR/FGMRES) around a
// block lower-triangular field-split preconditioner whose viscous block
// is a hybrid geometric/algebraic multigrid with matrix-free
// tensor-product operator application on the fine levels — the paper's
// headline contribution.
//
// This package is the public facade: it re-exports the model driver, the
// paper's two model problems (sinker sedimentation and continental
// rifting), the Stokes solver configuration, and the building blocks
// needed to set up custom problems. The implementation lives under
// internal/ — see DESIGN.md for the system inventory and EXPERIMENTS.md
// for the per-table/figure reproduction results.
//
// # Quickstart
//
//	m := ptatin3d.NewSinker(ptatin3d.DefaultSinkerOptions())
//	for i := 0; i < 3; i++ {
//		if err := m.StepForward(); err != nil {
//			log.Fatal(err)
//		}
//	}
//	m.WriteVTK("sinker.vtk")
package ptatin3d

import (
	"ptatin3d/internal/fem"
	"ptatin3d/internal/krylov"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/model"
	"ptatin3d/internal/mpm"
	"ptatin3d/internal/nonlinear"
	"ptatin3d/internal/op"
	"ptatin3d/internal/perfmodel"
	"ptatin3d/internal/rheology"
	"ptatin3d/internal/scenario"
	"ptatin3d/internal/stokes"
	"ptatin3d/internal/thermal"
)

// Model is the coupled time-stepping driver: material points + nonlinear
// Stokes + energy equation + ALE free surface.
type Model = model.Model

// StepStats records one time step's solver behaviour (Figure 4 data).
type StepStats = model.StepStats

// StokesBackend executes the inner Krylov solves of a model's nonlinear
// Stokes stage; see SharedBackend and DistributedBackend.
type StokesBackend = model.StokesBackend

// DistributedBackend runs the Stokes solves rank-distributed over the
// simulated MPI fabric.
type DistributedBackend = model.DistributedBackend

// NewDistributedBackend builds a backend over a px×py×pz rank grid.
func NewDistributedBackend(px, py, pz int, opts stokes.DistOptions) *DistributedBackend {
	return model.NewDistributedBackend(px, py, pz, opts)
}

// Scenario types: declarative model descriptions that compile into a
// ready-to-step Model (see internal/scenario).
type (
	// Scenario is a declarative model description.
	Scenario = scenario.Spec
	// SinkerOptions parametrizes the §IV-A sedimentation benchmark.
	SinkerOptions = scenario.SinkerOptions
	// RiftOptions parametrizes the §V continental rifting model.
	RiftOptions = scenario.RiftOptions
)

// Scenarios lists the registered scenario names.
func Scenarios() []string { return scenario.Names() }

// GetScenario returns a fresh copy of a registered scenario spec.
func GetScenario(name string) (Scenario, error) { return scenario.Get(name) }

// CompileScenario lowers a spec into a ready-to-step model.
func CompileScenario(s Scenario, workers int) (*Model, error) { return scenario.Compile(s, workers) }

// DefaultSinkerOptions returns the paper's sinker configuration at
// reduced default resolution.
func DefaultSinkerOptions() SinkerOptions { return scenario.DefaultSinkerOptions() }

// DefaultRiftOptions returns the reduced-scale rift configuration.
func DefaultRiftOptions() RiftOptions { return scenario.DefaultRiftOptions() }

// NewSinker builds the sedimentation model (compiled from the "sinker"
// scenario spec).
func NewSinker(o SinkerOptions) *Model { return scenario.NewSinker(o) }

// NewRift builds the continental rifting model (compiled from the
// "rift" scenario spec).
func NewRift(o RiftOptions) *Model { return scenario.NewRift(o) }

// Mesh types.
type (
	// DA is the structured, deformable Q2 hexahedral mesh (DMDA analogue).
	DA = mesh.DA
	// BC holds velocity Dirichlet constraints.
	BC = mesh.BC
	// Face identifies a boundary face.
	Face = mesh.Face
)

// Boundary faces.
const (
	XMin = mesh.XMin
	XMax = mesh.XMax
	YMin = mesh.YMin
	YMax = mesh.YMax
	ZMin = mesh.ZMin
	ZMax = mesh.ZMax
)

// NewMesh creates an mx×my×mz-element Q2 mesh over a box.
func NewMesh(mx, my, mz int, x0, x1, y0, y1, z0, z1 float64) *DA {
	return mesh.New(mx, my, mz, x0, x1, y0, y1, z0, z1)
}

// NewBC returns an unconstrained boundary-condition set for the mesh.
func NewBC(da *DA) *BC { return mesh.NewBC(da) }

// Discretization types.
type (
	// Problem is the Q2–P1disc discretization context: mesh, constraints,
	// and quadrature-point coefficients.
	Problem = fem.Problem
	// Vec is a dense vector.
	Vec = la.Vec
)

// NewProblem builds a discretization on the mesh (nil bc = unconstrained).
func NewProblem(da *DA, bc *BC) *Problem { return fem.NewProblem(da, bc) }

// Stokes solver types.
type (
	// StokesConfig selects a solver configuration (multigrid depth,
	// fine-level operator kind, coarse solver, outer method).
	StokesConfig = stokes.Config
	// StokesSolver is a configured coupled Stokes solver.
	StokesSolver = stokes.Solver
	// Monitor records per-iteration field residual norms (Figure 2 data).
	Monitor = stokes.Monitor
)

// Operator-representation kinds (Table I variants plus runtime
// selection); see internal/op.
const (
	MatrixFreeTensor = op.Tensor
	MatrixFreeRef    = op.MFRef
	AssembledSpMV    = op.Assembled
	GalerkinCSR      = op.Galerkin
	AutoSelect       = op.Auto
)

// OpKind identifies an operator representation.
type OpKind = op.Kind

// ParseOpKind parses a -op flag value (auto|mf|mfref|asm|galerkin).
func ParseOpKind(s string) (OpKind, error) { return op.ParseKind(s) }

// DefaultStokesConfig returns the paper's production configuration
// (§IV-A): 3 levels, matrix-free tensor fine level, V(2,2) Chebyshev,
// Galerkin coarsest operator, one GAMG V-cycle coarse solve, GCR outer.
func DefaultStokesConfig() StokesConfig { return stokes.DefaultConfig() }

// NewStokesSolver builds a solver for the problem's current coefficients.
func NewStokesSolver(p *Problem, cfg StokesConfig) (*StokesSolver, error) {
	return stokes.New(p, cfg)
}

// Rheology types.
type (
	// Lithology is one rock type's constitutive parameters.
	Lithology = rheology.Lithology
	// LithologyTable maps material-point lithology indices to parameters.
	LithologyTable = rheology.Table
	// RheologyState is the local state a flow law is evaluated at.
	RheologyState = rheology.State
)

// Flow-law kinds.
const (
	ConstantViscosity = rheology.Constant
	ArrheniusLaw      = rheology.Arrhenius
	FrankKamenetskii  = rheology.FrankKamenetskii
)

// Material points.
type (
	// MaterialPoints is the Lagrangian point store.
	MaterialPoints = mpm.Points
)

// NewPointLattice seeds nper³ material points per element.
func NewPointLattice(p *Problem, nper int, classify func(x, y, z float64) int32) *MaterialPoints {
	return mpm.NewLattice(p, nper, classify)
}

// Thermal solver.
type ThermalSolver = thermal.Solver

// NewThermalSolver creates a SUPG energy-equation solver with diffusivity
// kappa on the problem's vertex grid.
func NewThermalSolver(p *Problem, kappa float64) *ThermalSolver {
	return thermal.New(p, kappa)
}

// Nonlinear solver options.
type NonlinearOptions = nonlinear.Options

// DefaultNonlinearOptions returns Newton defaults with Eisenstat–Walker
// forcing and a backtracking line search.
func DefaultNonlinearOptions() NonlinearOptions { return nonlinear.DefaultOptions() }

// Performance model (Table I).
type (
	// OpCounts is a per-element flop/byte cost summary.
	OpCounts = perfmodel.OpCounts
	// MachineBalance is the measured roofline machine model.
	MachineBalance = perfmodel.Machine
)

// PaperTableI returns the paper's published Table I counts.
func PaperTableI() []OpCounts { return perfmodel.PaperTableI() }

// ReproOpCounts returns this implementation's analytic per-element counts.
func ReproOpCounts() []OpCounts { return perfmodel.ReproCounts() }

// MeasureMachine runs the bandwidth/throughput microbenchmarks.
func MeasureMachine() MachineBalance { return perfmodel.MeasureMachine() }

// KrylovParams bounds an iterative solve.
type KrylovParams = krylov.Params

// MomentumRHS assembles the buoyancy load vector for the problem into b.
func MomentumRHS(p *Problem, b Vec) { fem.MomentumRHS(p, b) }
