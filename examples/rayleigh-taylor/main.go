// Rayleigh–Taylor: build a custom geodynamic model from the library's
// primitives rather than the canned problem setups — a dense layer over a
// buoyant layer with a sinusoidal interface perturbation, the classic
// instability benchmark of the MPM/marker literature the paper builds on.
// Demonstrates: mesh + boundary conditions, material-point seeding with a
// custom classifier, a user lithology table, and hand-assembly of the
// Model driver.
//
//	go run ./examples/rayleigh-taylor
package main

import (
	"fmt"
	"log"
	"math"

	"ptatin3d"
)

func main() {
	const m = 8
	da := ptatin3d.NewMesh(m, m, m, 0, 1, 0, 1, 0, 1)
	bc := ptatin3d.NewBC(da)
	// Free slip everywhere except the top (free surface).
	bc.FreeSlipBox(da, ptatin3d.XMin, ptatin3d.XMax, ptatin3d.YMin, ptatin3d.YMax, ptatin3d.ZMin)
	prob := ptatin3d.NewProblem(da, bc)
	prob.Workers = 2
	prob.Gravity = [3]float64{0, 0, -9.8}

	// Dense layer on top of a light layer; perturbed interface at
	// z = 0.5 + 0.04·cos(2πx).
	interfaceZ := func(x float64) float64 { return 0.5 + 0.04*math.Cos(2*math.Pi*x) }
	points := ptatin3d.NewPointLattice(prob, 3, func(x, y, z float64) int32 {
		if z > interfaceZ(x) {
			return 1 // dense overburden
		}
		return 0 // buoyant substrate
	})

	lith := ptatin3d.LithologyTable{
		{Name: "buoyant", Type: ptatin3d.ConstantViscosity, Eta0: 0.01, Rho0: 1.0},
		{Name: "dense", Type: ptatin3d.ConstantViscosity, Eta0: 1.0, Rho0: 1.3},
	}

	cfg := ptatin3d.DefaultStokesConfig()
	cfg.Workers = 2
	nl := ptatin3d.DefaultNonlinearOptions()
	nl.EisenstatWalker = false
	nl.MaxIt = 2
	nl.RTol = 1e-5

	model := &ptatin3d.Model{
		Prob: prob, Points: points, Lith: lith,
		Cfg: cfg, VerticalAxis: 2, FreeSurface: true,
		CFL: 0.25, Workers: 2, Nonlinear: nl,
	}
	model.UpdateCoefficients(make(ptatin3d.Vec, da.NVelDOF()+da.NPresDOF()), false)

	// Track the instability: mean depth of the dense material grows as
	// the overburden founders.
	meanDenseZ := func() float64 {
		var s float64
		var n int
		for i := 0; i < points.Len(); i++ {
			if points.Litho[i] == 1 {
				s += points.Z[i]
				n++
			}
		}
		return s / float64(n)
	}
	fmt.Printf("initial mean dense-layer height: %.4f\n", meanDenseZ())
	for step := 0; step < 4; step++ {
		if err := model.StepForward(); err != nil {
			log.Fatal(err)
		}
		st := model.Stats[len(model.Stats)-1]
		fmt.Printf("step %d: t=%.4f dt=%.4f krylov=%d mean dense z=%.4f\n",
			st.Step, st.Time, st.Dt, st.KrylovIts, meanDenseZ())
	}
	if err := model.WritePointsVTK("rayleigh_taylor_points.vtk"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote rayleigh_taylor_points.vtk")
}
