// Rayleigh–Taylor: author a custom geodynamic model as a declarative
// scenario spec rather than hand-assembling mesh/BC/points/driver — a
// dense layer over a buoyant layer with a sinusoidal interface
// perturbation, the classic instability benchmark of the MPM/marker
// literature the paper builds on. Demonstrates: a Spec literal with a
// lithology table, a perturbed-layer geometry primitive, free-slip
// boundary conditions, and compilation into the time-stepping model.
//
// The same model ships in the built-in registry, so this is equivalent
// to
//
//	go run ./cmd/ptatin-run -scenario rayleigh-taylor -steps 4
//
// and the spec below could equally be saved as JSON (see
// `ptatin-run -print-spec`) and run with `-scenario file.json`.
// (Hand-assembly via ptatin3d.NewMesh/NewProblem/NewPointLattice still
// works for needs the spec schema can't express, but is deprecated as
// the first resort.)
//
//	go run ./examples/rayleigh-taylor
package main

import (
	"fmt"
	"log"

	"ptatin3d"
	"ptatin3d/internal/scenario"
)

func main() {
	boolFalse := false
	spec := ptatin3d.Scenario{
		Name:        "rt-custom",
		Description: "dense layer over a buoyant half-space, cosine interface perturbation",
		Domain:      scenario.Box{X1: 1, Y1: 1, Z1: 1},
		Resolution:  [3]int{8, 8, 8},
		PPE:         3,
		Gravity:     [3]float64{0, 0, -9.8},
		// Free surface on top (z max), free slip everywhere else.
		VerticalAxis: 2,
		FreeSurface:  true,
		CFL:          0.25,
		Lithologies: []scenario.LithologySpec{
			{Name: "buoyant", Type: "constant", Eta0: 0.01, Rho0: 1.0},
			{Name: "dense", Type: "constant", Eta0: 1.0, Rho0: 1.3},
		},
		// Dense layer on top of a light layer; perturbed interface at
		// z = 0.5 + 0.04·cos(2πx).
		Geometry: []scenario.Primitive{{
			Kind: "layer", Litho: 1, Axis: 2, From: 0.5, To: 1.5,
			PerturbAmp: 0.04, PerturbAxis: 0, PerturbMode: 1,
		}},
		BCs: []scenario.BCSpec{
			{Face: "xmin", Kind: "freeslip"}, {Face: "xmax", Kind: "freeslip"},
			{Face: "ymin", Kind: "freeslip"}, {Face: "ymax", Kind: "freeslip"},
			{Face: "zmin", Kind: "freeslip"},
		},
		Nonlinear: scenario.NonlinearSpec{MaxIt: 2, RTol: 1e-5, EisenstatWalker: &boolFalse},
	}

	model, err := ptatin3d.CompileScenario(spec, 2)
	if err != nil {
		log.Fatal(err)
	}
	points := model.Points

	// Track the instability: mean depth of the dense material grows as
	// the overburden founders.
	meanDenseZ := func() float64 {
		var s float64
		var n int
		for i := 0; i < points.Len(); i++ {
			if points.Litho[i] == 1 {
				s += points.Z[i]
				n++
			}
		}
		return s / float64(n)
	}
	fmt.Printf("initial mean dense-layer height: %.4f\n", meanDenseZ())
	for step := 0; step < 4; step++ {
		if err := model.StepForward(); err != nil {
			log.Fatal(err)
		}
		st := model.Stats[len(model.Stats)-1]
		fmt.Printf("step %d: t=%.4f dt=%.4f krylov=%d mean dense z=%.4f\n",
			st.Step, st.Time, st.Dt, st.KrylovIts, meanDenseZ())
	}
	if err := model.WritePointsVTK("rayleigh_taylor_points.vtk"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote rayleigh_taylor_points.vtk")
}
