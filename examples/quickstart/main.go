// Quickstart: run three time steps of the paper's sedimentation
// benchmark (§IV-A) — eight dense viscous spheres sinking through a less
// viscous fluid under a free surface — and write ParaView-loadable VTK
// output.
//
// Models are selected from the scenario registry and compiled from
// their declarative specs; the command-line equivalent of this program
// is
//
//	go run ./cmd/ptatin-run -scenario sinker -steps 3
//
// (The older constructor-style entry point ptatin3d.NewSinker /
// DefaultSinkerOptions still works — it now compiles the same "sinker"
// spec — but new code should start from the registry.)
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ptatin3d"
)

func main() {
	spec, err := ptatin3d.GetScenario("sinker")
	if err != nil {
		log.Fatal(err)
	}
	spec.Resolution = [3]int{8, 8, 8} // 8³ Q2 elements (the paper uses 64³ on a Cray)

	m, err := ptatin3d.CompileScenario(spec, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sinker: %d elements, %d material points, %d velocity dofs\n",
		m.Prob.DA.NElements(), m.Points.Len(), m.Prob.DA.NVelDOF())

	for step := 0; step < 3; step++ {
		if err := m.StepForward(); err != nil {
			log.Fatal(err)
		}
		st := m.Stats[len(m.Stats)-1]
		fmt.Printf("step %d: t=%.4f dt=%.4f nonlinear=%d krylov=%d |F| %.2e -> %.2e\n",
			st.Step, st.Time, st.Dt, st.NewtonIts, st.KrylovIts, st.FNorm0, st.FNorm)
	}

	if err := m.WriteVTK("quickstart_grid.vtk"); err != nil {
		log.Fatal(err)
	}
	if err := m.WritePointsVTK("quickstart_points.vtk"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart_grid.vtk and quickstart_points.vtk")
}
