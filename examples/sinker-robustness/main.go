// Sinker robustness: the Figure-2 experiment of the paper — solve the
// heterogeneous Stokes problem at increasing viscosity contrast Δη and
// watch the vertical-momentum and pressure residuals equilibrate before
// global convergence sets in. Uses the solver-level API rather than the
// time-stepping driver.
//
//	go run ./examples/sinker-robustness
package main

import (
	"fmt"
	"log"

	"ptatin3d"
)

func main() {
	for _, deta := range []float64{1, 100, 10000} {
		opts := ptatin3d.DefaultSinkerOptions()
		opts.M = 8
		opts.DeltaEta = deta
		opts.Workers = 2
		m := ptatin3d.NewSinker(opts)

		// Configure the paper's production solver: GCR wrapped around the
		// block lower-triangular field-split preconditioner, one V(2,2)
		// geometric multigrid cycle on the viscous block, GAMG coarse solve.
		cfg := m.Cfg
		cfg.Params.MaxIt = 800
		cfg.CoeffCoarsen = m.CoeffCoarsener()
		solver, err := ptatin3d.NewStokesSolver(m.Prob, cfg)
		if err != nil {
			log.Fatal(err)
		}

		bu := make(ptatin3d.Vec, m.Prob.DA.NVelDOF())
		ptatin3d.MomentumRHS(m.Prob, bu)
		x := make(ptatin3d.Vec, solver.Op.N())
		mon := &ptatin3d.Monitor{}
		res := solver.Solve(x, bu, mon)

		fmt.Printf("Δη = %-7g converged=%-5v iterations=%-4d rel.residual=%.2e\n",
			deta, res.Converged, res.Iterations, res.Residual/res.Residual0)
		// Print the equilibration phase: the pressure residual starts at
		// zero and must rise to the momentum residual's level.
		maxP, itMax := 0.0, 0
		for i, p := range mon.Pressure {
			if p > maxP {
				maxP, itMax = p, mon.Iter[i]
			}
		}
		fmt.Printf("    vertical momentum residual at start: %.3e\n", mon.Vertical[0])
		fmt.Printf("    pressure residual peaks at %.3e (iteration %d)\n", maxP, itMax)
	}
}
