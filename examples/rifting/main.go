// Rifting: a reduced-scale version of the paper's §V continental rifting
// model — visco-plastic crust over a temperature-dependent mantle, a
// damage seed, symmetric extension, thermal evolution and a deforming
// free surface. Prints the Figure-4-style per-step solver statistics and
// writes a final snapshot.
//
// The model comes from the scenario registry; the command-line
// equivalent (including a rank-distributed variant) is
//
//	go run ./cmd/ptatin-run -scenario rift -res 16,4,8 -steps 5
//	go run ./cmd/ptatin-run -scenario rift -res 16,4,8 -steps 5 -ranks 2x1x1
//
// (ptatin3d.NewRift / DefaultRiftOptions still work — they compile the
// same "rift" spec — but new code should start from the registry.)
//
//	go run ./examples/rifting
package main

import (
	"fmt"
	"log"

	"ptatin3d"
)

func main() {
	spec, err := ptatin3d.GetScenario("rift")
	if err != nil {
		log.Fatal(err)
	}
	spec.Resolution = [3]int{16, 4, 8} // paper: 256×32×128
	spec.Solver.Levels = 0             // re-derive the hierarchy for the reduced grid
	// Weak lower crust (the paper's §V conclusion: favours wide, oblique
	// margins; raise towards ~0.5 for ridge jumps / transform margins).
	spec.Lithologies[1].Eta0 = 0.05

	m, err := ptatin3d.CompileScenario(spec, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rift: %d elements, %d points, domain 1200×200×600 km (nondim 12×2×6)\n",
		m.Prob.DA.NElements(), m.Points.Len())

	const steps = 5
	for i := 0; i < steps; i++ {
		if err := m.StepForward(); err != nil {
			log.Fatal(err)
		}
		st := m.Stats[len(m.Stats)-1]
		fmt.Printf("step %d: t=%.3f (≈%.1f kyr) nonlinear=%d krylov=%d |F| %.2e -> %.2e topo=[%.4f, %.4f]\n",
			st.Step, st.Time, st.Time*1e4, st.NewtonIts, st.KrylovIts,
			st.FNorm0, st.FNorm, st.TopoMin, st.TopoMax)
	}

	// Total accumulated plastic strain — the damage field that localizes
	// into rift-bounding shear zones.
	var plastic float64
	for i := 0; i < m.Points.Len(); i++ {
		plastic += m.Points.Plastic[i]
	}
	fmt.Printf("total accumulated plastic strain: %.3f over %d points\n", plastic, m.Points.Len())

	if err := m.WriteVTK("rift_grid.vtk"); err != nil {
		log.Fatal(err)
	}
	if err := m.WritePointsVTK("rift_points.vtk"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote rift_grid.vtk and rift_points.vtk")
}
