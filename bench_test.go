// Benchmarks regenerating every table and figure of the paper (see
// EXPERIMENTS.md for the recorded results and the paper-vs-measured
// comparison, and DESIGN.md for the scale substitutions):
//
//	Table I   BenchmarkTableI_*        operator application variants
//	Fig. 1    BenchmarkFig1_*          sinker streamline tracing
//	Fig. 2    BenchmarkFig2_*          robustness vs viscosity contrast
//	Table II  BenchmarkTableII_*       SpMV variants, full Stokes solve
//	Table III BenchmarkTableIII_*      fine-level residual (MG res)
//	Table IV  BenchmarkTableIV_*       preconditioner configurations
//	Fig. 3/4  BenchmarkFig4_RiftStep   one rift time step (full pipeline)
//	          BenchmarkAblation_*      design-choice ablations (DESIGN.md)
//
// Run a single family with e.g.
//
//	go test -bench 'TableIV' -benchmem .
package ptatin3d_test

import (
	"math"
	"sync"
	"testing"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/mg"
	"ptatin3d/internal/op"
	"ptatin3d/internal/par"
	"ptatin3d/internal/scenario"
	"ptatin3d/internal/stokes"
	"ptatin3d/internal/telemetry"
	"ptatin3d/internal/thermal"
)

// benchProblem builds a deformed, variable-viscosity viscous-block
// problem for the operator benchmarks.
func benchProblem(m int) *fem.Problem {
	da := mesh.New(m, m, m, 0, 1, 0, 1, 0, 1)
	da.Deform(func(x, y, z float64) (float64, float64, float64) {
		return x + 0.05*math.Sin(math.Pi*y), y + 0.04*math.Sin(math.Pi*z), z + 0.03*x*y
	})
	bc := mesh.NewBC(da)
	bc.FreeSlipBox(da, mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin)
	p := fem.NewProblem(da, bc)
	p.SetCoefficientsFunc(func(x, y, z float64) float64 {
		return math.Exp(2 * math.Sin(3*x) * math.Cos(2*y))
	}, nil)
	return p
}

// opBench times repeated operator applications.
func opBench(b *testing.B, op interface {
	N() int
	Apply(x, y la.Vec)
}) {
	u := la.NewVec(op.N())
	for i := range u {
		u[i] = math.Sin(float64(i))
	}
	y := la.NewVec(op.N())
	op.Apply(u, y) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op.Apply(u, y)
	}
}

// --- Table I -----------------------------------------------------------

func BenchmarkTableI_Assembled(b *testing.B) { opBench(b, fem.NewAsm(benchProblem(8))) }
func BenchmarkTableI_MatrixFree(b *testing.B) {
	opBench(b, fem.NewMF(benchProblem(8)))
}
func BenchmarkTableI_Tensor(b *testing.B) { opBench(b, fem.NewTensor(benchProblem(8))) }
func BenchmarkTableI_TensorC(b *testing.B) {
	opBench(b, fem.NewTensorC(benchProblem(8)))
}

// --- sinker-based solves (Figures 1–2, Tables II–IV) --------------------

// sinkerSolveBench runs complete Stokes solves on the §IV-A sinker.
func sinkerSolveBench(b *testing.B, m int, deta float64, mut func(*stokes.Config)) {
	o := scenario.DefaultSinkerOptions()
	o.M = m
	o.DeltaEta = deta
	mdl := scenario.NewSinker(o)
	mdl.UpdateCoefficients(la.NewVec(mdl.Prob.DA.NVelDOF()+mdl.Prob.DA.NPresDOF()), false)
	cfg := mdl.Cfg
	cfg.Params.MaxIt = 1500
	cfg.CoeffCoarsen = mdl.CoeffCoarsener()
	if mut != nil {
		mut(&cfg)
	}
	bu := la.NewVec(mdl.Prob.DA.NVelDOF())
	fem.MomentumRHS(mdl.Prob, bu)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := stokes.New(mdl.Prob, cfg)
		if err != nil {
			b.Fatal(err)
		}
		x := la.NewVec(s.Op.N())
		b.StartTimer()
		res := s.Solve(x, bu, nil)
		if !res.Converged {
			b.Fatalf("solve failed after %d its", res.Iterations)
		}
		b.ReportMetric(float64(res.Iterations), "its")
	}
}

func BenchmarkFig2_Contrast1(b *testing.B)     { sinkerSolveBench(b, 8, 1, nil) }
func BenchmarkFig2_Contrast100(b *testing.B)   { sinkerSolveBench(b, 8, 100, nil) }
func BenchmarkFig2_Contrast10000(b *testing.B) { sinkerSolveBench(b, 8, 10000, nil) }

func BenchmarkTableII_SolveAsmb(b *testing.B) {
	sinkerSolveBench(b, 8, 100, func(c *stokes.Config) { c.FineKind = op.Assembled })
}
func BenchmarkTableII_SolveMF(b *testing.B) {
	sinkerSolveBench(b, 8, 100, func(c *stokes.Config) { c.FineKind = op.MFRef })
}
func BenchmarkTableII_SolveTens(b *testing.B) {
	sinkerSolveBench(b, 8, 100, func(c *stokes.Config) { c.FineKind = op.Tensor })
}

// Table III's "MG res" rows measure the fine-level residual evaluation of
// each SpMV implementation — operator application on the sinker problem.
func tableIIIProblem() *fem.Problem {
	o := scenario.DefaultSinkerOptions()
	o.M = 8
	mdl := scenario.NewSinker(o)
	mdl.UpdateCoefficients(la.NewVec(mdl.Prob.DA.NVelDOF()+mdl.Prob.DA.NPresDOF()), false)
	return mdl.Prob
}

func BenchmarkTableIII_MGResAsmb(b *testing.B)   { opBench(b, fem.NewAsm(tableIIIProblem())) }
func BenchmarkTableIII_MGResMF(b *testing.B)     { opBench(b, fem.NewMF(tableIIIProblem())) }
func BenchmarkTableIII_MGResTensor(b *testing.B) { opBench(b, fem.NewTensor(tableIIIProblem())) }

func BenchmarkTableIV_GMGi(b *testing.B) { sinkerSolveBench(b, 8, 100, nil) }
func BenchmarkTableIV_GMGii(b *testing.B) {
	sinkerSolveBench(b, 8, 100, func(c *stokes.Config) {
		c.FineKind = op.Assembled
		c.GalerkinAll = true
	})
}
func BenchmarkTableIV_SAi(b *testing.B) {
	sinkerSolveBench(b, 8, 100, func(c *stokes.Config) {
		c.Levels = 1
		c.FineKind = op.Assembled
		c.AMGConfig = "gamg"
	})
}
func BenchmarkTableIV_SAMLi(b *testing.B) {
	sinkerSolveBench(b, 8, 100, func(c *stokes.Config) {
		c.Levels = 1
		c.FineKind = op.Assembled
		c.AMGConfig = "ml"
	})
}
func BenchmarkTableIV_SAMLii(b *testing.B) {
	sinkerSolveBench(b, 8, 100, func(c *stokes.Config) {
		c.Levels = 1
		c.FineKind = op.Assembled
		c.AMGConfig = "mlstrong"
	})
}

// --- Figure 1: streamline tracing ---------------------------------------

func BenchmarkFig1_Streamlines(b *testing.B) {
	o := scenario.DefaultSinkerOptions()
	o.M = 6
	mdl := scenario.NewSinker(o)
	mdl.Cfg.Levels = 2
	if _, err := mdl.SolveStokes(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := mdl.Streamline(0.3, 0.4, 0.8, 0.02, 300)
		if len(line) < 2 {
			b.Fatal("streamline too short")
		}
	}
}

// --- Figures 3/4: one rift time step ------------------------------------

func BenchmarkFig4_RiftStep(b *testing.B) {
	o := scenario.DefaultRiftOptions()
	o.Mx, o.My, o.Mz = 16, 4, 8
	m := scenario.NewRift(o)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.StepForward(); err != nil {
			b.Fatal(err)
		}
		st := m.Stats[len(m.Stats)-1]
		b.ReportMetric(float64(st.NewtonIts), "newton")
		b.ReportMetric(float64(st.KrylovIts), "krylov")
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ----------

// GCR vs FGMRES as the outer flexible method (§III-A).
func BenchmarkAblation_OuterGCR(b *testing.B) {
	sinkerSolveBench(b, 8, 100, func(c *stokes.Config) { c.OuterMethod = "gcr" })
}
func BenchmarkAblation_OuterFGMRES(b *testing.B) {
	sinkerSolveBench(b, 8, 100, func(c *stokes.Config) { c.OuterMethod = "fgmres" })
}

// Chebyshev degree: V(1,1) vs V(2,2) vs V(3,3) (§III-C).
func BenchmarkAblation_V11(b *testing.B) {
	sinkerSolveBench(b, 8, 100, func(c *stokes.Config) { c.SmoothSteps = 1 })
}
func BenchmarkAblation_V22(b *testing.B) {
	sinkerSolveBench(b, 8, 100, func(c *stokes.Config) { c.SmoothSteps = 2 })
}
func BenchmarkAblation_V33(b *testing.B) {
	sinkerSolveBench(b, 8, 100, func(c *stokes.Config) { c.SmoothSteps = 3 })
}

// Coarse-solver choice: GAMG V-cycle vs exact LU vs CG+ASM (§IV-A, §V-A).
func BenchmarkAblation_CoarseGAMG(b *testing.B) {
	sinkerSolveBench(b, 8, 100, func(c *stokes.Config) { c.CoarseSolver = "gamg" })
}
func BenchmarkAblation_CoarseLU(b *testing.B) {
	sinkerSolveBench(b, 8, 100, func(c *stokes.Config) { c.CoarseSolver = "lu" })
}
func BenchmarkAblation_CoarseASMCG(b *testing.B) {
	sinkerSolveBench(b, 8, 100, func(c *stokes.Config) { c.CoarseSolver = "asmcg" })
}

// SUPG on/off for the energy equation (§V).
func supgBench(b *testing.B, supg bool) {
	da := mesh.New(8, 8, 8, 0, 1, 0, 1, 0, 1)
	p := fem.NewProblem(da, nil)
	s := thermal.New(p, 1e-6)
	s.SUPG = supg
	s.SetFaceTemperature(mesh.XMin, 1)
	s.SetFaceTemperature(mesh.XMax, 0)
	u := la.NewVec(p.DA.NVelDOF())
	for n := 0; n < p.DA.NNodes(); n++ {
		u[3*n] = 1
	}
	T := make([]float64, p.DA.NVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(T, u, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_ThermalSUPG(b *testing.B)     { supgBench(b, true) }
func BenchmarkAblation_ThermalGalerkin(b *testing.B) { supgBench(b, false) }

// Worker scaling of the tensor kernel (intra-node story; on a single-CPU
// host this measures the scheduling overhead floor — see EXPERIMENTS.md).
func workerBench(b *testing.B, workers int) {
	p := benchProblem(12)
	p.Workers = workers
	opBench(b, fem.NewTensor(p))
}

func BenchmarkScaling_Workers1(b *testing.B) { workerBench(b, 1) }
func BenchmarkScaling_Workers2(b *testing.B) { workerBench(b, 2) }
func BenchmarkScaling_Workers4(b *testing.B) { workerBench(b, 4) }

// --- Telemetry overhead ------------------------------------------------
//
// The contract (DESIGN.md): with telemetry disabled every instrument is a
// nil pointer and recording degenerates to a nil check — no locks, no
// clock reads, no allocations on the hot path. These benchmarks pin that
// down against the enabled cost.

func BenchmarkTelemetry_CounterDisabled(b *testing.B) {
	var c *telemetry.Counter // nil = disabled
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetry_CounterEnabled(b *testing.B) {
	c := telemetry.New().Root().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkTelemetry_TimerDisabled(b *testing.B) {
	var t *telemetry.Timer // nil = disabled: Start skips the clock read
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Stop(t.Start())
	}
}

func BenchmarkTelemetry_TimerEnabled(b *testing.B) {
	t := telemetry.New().Root().Timer("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Stop(t.Start())
	}
}

// parForBench measures the worker-pool dispatch path, where the occupancy
// probe is the per-call telemetry cost.
func parForBench(b *testing.B, enabled bool) {
	if enabled {
		par.SetTelemetry(telemetry.New().Root().Child("par"))
	} else {
		par.SetTelemetry(nil)
	}
	defer par.SetTelemetry(nil)
	sink := make([]float64, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.For(4, len(sink), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				sink[j] += 1
			}
		})
	}
}

func BenchmarkTelemetry_ParForDisabled(b *testing.B) { parForBench(b, false) }
func BenchmarkTelemetry_ParForEnabled(b *testing.B)  { parForBench(b, true) }

// solveBench runs the production GMG Stokes solve with and without the
// full telemetry stack attached — the end-to-end overhead check.
func telemetrySolveBench(b *testing.B, enabled bool) {
	p := benchProblem(8)
	cfg := stokes.DefaultConfig()
	if enabled {
		cfg.Telemetry = telemetry.New().Root()
	}
	p.Gravity = [3]float64{0, 0, -9.8}
	p.SetCoefficientsFunc(
		func(x, y, z float64) float64 { return math.Exp(2 * math.Sin(3*x) * math.Cos(2*y)) },
		func(x, y, z float64) float64 { return 1 + 0.5*math.Sin(math.Pi*z) },
	)
	cfg.CoeffCoarsen = mg.FuncCoeffCoarsener(
		func(x, y, z float64) float64 { return math.Exp(2 * math.Sin(3*x) * math.Cos(2*y)) },
		func(x, y, z float64) float64 { return 1 + 0.5*math.Sin(math.Pi*z) },
	)
	s, err := stokes.New(p, cfg)
	if err != nil {
		b.Fatal(err)
	}
	bu := la.NewVec(p.DA.NVelDOF())
	fem.MomentumRHS(p, bu)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := la.NewVec(s.Op.N())
		res := s.Solve(x, bu, nil)
		if !res.Converged {
			b.Fatal("solve failed")
		}
	}
}

func BenchmarkTelemetry_StokesSolveDisabled(b *testing.B) { telemetrySolveBench(b, false) }
func BenchmarkTelemetry_StokesSolveEnabled(b *testing.B)  { telemetrySolveBench(b, true) }

// --- Colored vs slab apply schedule (PR 4) -----------------------------
//
// BenchmarkApplySchedule pits the legacy 8-color barrier schedule against
// the slab-partitioned owner-computes scatter on the same tensor operator.
// The slab path removes the 8 per-apply barriers, restores lexicographic
// element order, and batches gather→kernel→scatter — the per-apply win is
// the headline number of the PR 4 benchmark (BENCH_PR4.json).

func applyScheduleBench(b *testing.B, workers int, colored bool) {
	p := benchProblem(12)
	p.Workers = workers
	t := fem.NewTensor(p)
	u := la.NewVec(t.N())
	for i := range u {
		u[i] = math.Sin(float64(i))
	}
	y := la.NewVec(t.N())
	apply := t.Apply
	if colored {
		apply = t.ApplyColored
	}
	apply(u, y) // warm (builds the slab partition / color schedule)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apply(u, y)
	}
}

func BenchmarkApplyColoredW1(b *testing.B) { applyScheduleBench(b, 1, true) }
func BenchmarkApplyColoredW4(b *testing.B) { applyScheduleBench(b, 4, true) }
func BenchmarkApplySlabW1(b *testing.B)    { applyScheduleBench(b, 1, false) }
func BenchmarkApplySlabW4(b *testing.B)    { applyScheduleBench(b, 4, false) }

// --- Pool dispatch vs per-call goroutine spawn -------------------------
//
// BenchmarkDispatch isolates the cost the persistent pool removes: the
// spawn variant recreates the pre-PR-4 behaviour (fresh goroutines plus a
// WaitGroup barrier per call), the pool variant goes through par.For. The
// body is deliberately tiny so the dispatch overhead dominates, as it did
// for the 8 small color sweeps per colored apply.

func BenchmarkDispatchSpawn(b *testing.B) {
	sink := make([]float64, 4096)
	const nw = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			lo, hi := w*len(sink)/nw, (w+1)*len(sink)/nw
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for j := lo; j < hi; j++ {
					sink[j] += 1
				}
			}(lo, hi)
		}
		wg.Wait()
	}
}

func BenchmarkDispatchPool(b *testing.B) {
	sink := make([]float64, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		par.For(4, len(sink), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				sink[j] += 1
			}
		})
	}
}
