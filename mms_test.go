package ptatin3d_test

import (
	"math"
	"testing"

	"ptatin3d/internal/fem"
	"ptatin3d/internal/la"
	"ptatin3d/internal/mesh"
	"ptatin3d/internal/stokes"
)

// Manufactured Stokes solution on the unit cube with η = 1:
//
//	u* = ( π sin(πx)cos(πy)sin(πz), −π cos(πx)sin(πy)sin(πz), 0 )   (div-free)
//	p* = sin(πx)cos(πy)sin(πz)
//
// Substituted into −∇·(2η ε(u)) + ∇p = f this gives the body force
// mmsForce below (for divergence-free u and constant η the viscous term
// reduces to −Δu). Velocity is prescribed on all six faces from u*, so
// the pressure is determined only up to a constant — PressureL2Error
// compares modulo the mean.

func mmsVelocity(x, y, z float64) (ux, uy, uz float64) {
	pi := math.Pi
	return pi * math.Sin(pi*x) * math.Cos(pi*y) * math.Sin(pi*z),
		-pi * math.Cos(pi*x) * math.Sin(pi*y) * math.Sin(pi*z),
		0
}

func mmsPressure(x, y, z float64) float64 {
	pi := math.Pi
	return math.Sin(pi*x) * math.Cos(pi*y) * math.Sin(pi*z)
}

func mmsForce(x, y, z float64) (fx, fy, fz float64) {
	pi := math.Pi
	sx, cx := math.Sin(pi*x), math.Cos(pi*x)
	sy, cy := math.Sin(pi*y), math.Cos(pi*y)
	sz, cz := math.Sin(pi*z), math.Cos(pi*z)
	pi3 := pi * pi * pi
	return 3*pi3*sx*cy*sz + pi*cx*cy*sz,
		-3*pi3*cx*sy*sz - pi*sx*sy*sz,
		pi * sx * cy * cz
}

// mmsSolve discretizes and solves the manufactured problem on an m³ mesh
// and returns the velocity and pressure L2 errors.
func mmsSolve(t *testing.T, m int) (vErr, pErr float64) {
	t.Helper()
	da := mesh.New(m, m, m, 0, 1, 0, 1, 0, 1)
	bc := mesh.NewBC(da)
	for _, f := range []mesh.Face{mesh.XMin, mesh.XMax, mesh.YMin, mesh.YMax, mesh.ZMin, mesh.ZMax} {
		bc.SetFaceFunc(da, f, mmsVelocity)
	}
	p := fem.NewProblem(da, bc)
	p.SetCoefficientsFunc(func(x, y, z float64) float64 { return 1 }, nil)

	cfg := stokes.DefaultConfig()
	cfg.Levels = 2
	cfg.Params.RTol = 1e-10
	cfg.Params.MaxIt = 300

	s, err := stokes.New(p, cfg)
	if err != nil {
		t.Fatalf("m=%d: %v", m, err)
	}
	bu := la.NewVec(da.NVelDOF())
	fem.MomentumRHSFunc(p, mmsForce, bu)
	x := la.NewVec(s.Op.N())
	bc.ApplyToVec(x[:da.NVelDOF()])
	res := s.Solve(x, bu, nil)
	if !res.Converged {
		t.Fatalf("m=%d: solve failed after %d its (rel %.2e)",
			m, res.Iterations, res.Residual/res.Residual0)
	}
	u, pv := s.Op.Split(x)
	vErr = fem.VelocityL2Error(p, u, mmsVelocity)
	pErr = fem.PressureL2Error(p, pv, mmsPressure)
	t.Logf("m=%2d: its=%3d  |u_h-u*|_L2=%.4e  |p_h-p*|_L2=%.4e",
		m, res.Iterations, vErr, pErr)
	return vErr, pErr
}

// TestMMSConvergence verifies the discretization order of the Q2–P1disc
// Stokes elements against the manufactured solution: under uniform
// refinement the velocity L2 error must shrink at ≥3rd order and the
// pressure L2 error at ≥2nd order (the optimal rates for this pair).
func TestMMSConvergence(t *testing.T) {
	ms := []int{2, 4, 8}
	if testing.Short() {
		ms = ms[:2]
	}
	vErrs := make([]float64, len(ms))
	pErrs := make([]float64, len(ms))
	for i, m := range ms {
		vErrs[i], pErrs[i] = mmsSolve(t, m)
	}
	for i := 1; i < len(ms); i++ {
		vRate := math.Log2(vErrs[i-1] / vErrs[i])
		pRate := math.Log2(pErrs[i-1] / pErrs[i])
		t.Logf("m %d→%d: velocity rate %.2f, pressure rate %.2f",
			ms[i-1], ms[i], vRate, pRate)
		if vRate < 2.7 {
			t.Errorf("velocity convergence rate %.2f < 2.7 (m %d→%d)", vRate, ms[i-1], ms[i])
		}
		if pRate < 1.7 {
			t.Errorf("pressure convergence rate %.2f < 1.7 (m %d→%d)", pRate, ms[i-1], ms[i])
		}
	}
}
